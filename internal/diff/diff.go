// Package diff is the differential analysis engine: it turns the
// paper's interactive workflow — render two profiles, eyeball which
// peaks moved (§3.2, §5) — into machine-checkable verdicts over
// archived runs. Built on analysis.Selector (three-phase selection,
// peak structure, Earth Mover's Distance), it classifies every
// operation of two runs as unchanged, shifted-peak, new-peak,
// lost-peak, reshaped, new-op, or missing-op, so a CI gate can assert
// "this kernel-config change shifted nothing" the way the paper's
// authors compared OS versions by hand.
package diff

import (
	"fmt"
	"sort"

	"osprof/internal/analysis"
	"osprof/internal/core"
	"osprof/internal/summary"
	"osprof/internal/trace"
)

// Schema versions the JSON shape of Report and MatrixReport so
// downstream tooling can rely on it.
const Schema = "osprof-diff/v1"

// Verdict classifies one operation's change between two runs.
type Verdict string

const (
	// Unchanged: the pair was either filtered in phase 1 (small share
	// or similar totals with identical peak structure) or scored below
	// the selector threshold with no structural change.
	Unchanged Verdict = "unchanged"

	// ShiftedPeak: a matched peak's mode bucket moved — the §5
	// "operation got slower/faster by a latency class" signature.
	ShiftedPeak Verdict = "shifted-peak"

	// NewPeak: run B shows more peaks than run A (a new latency mode
	// appeared, e.g. preemption or lock contention).
	NewPeak Verdict = "new-peak"

	// LostPeak: run B shows fewer peaks than run A (a latency mode
	// disappeared, e.g. a fixed contention source).
	LostPeak Verdict = "lost-peak"

	// Reshaped: same peak structure but the distribution's mass moved
	// enough to score over the selector threshold.
	Reshaped Verdict = "reshaped"

	// NewOp: the operation appears only in run B.
	NewOp Verdict = "new-op"

	// MissingOp: the operation appears only in run A.
	MissingOp Verdict = "missing-op"
)

// Changed reports whether the verdict flags a difference.
func (v Verdict) Changed() bool { return v != Unchanged }

// OpDiff is the differential verdict for one operation.
type OpDiff struct {
	Op      string  `json:"op"`
	Verdict Verdict `json:"verdict"`

	// Score is the selector's phase-3 rating (EMD by default); for
	// one-sided operations it is computed against an empty profile
	// (EMD's maximal 1).
	Score float64 `json:"score"`

	CountA uint64 `json:"count_a"`
	CountB uint64 `json:"count_b"`
	TotalA uint64 `json:"total_a"`
	TotalB uint64 `json:"total_b"`
	PeaksA int    `json:"peaks_a"`
	PeaksB int    `json:"peaks_b"`

	// ModeShifts lists per-matched-peak mode-bucket movement (B - A).
	ModeShifts []int `json:"mode_shifts,omitempty"`

	// Detail is a human-readable explanation of the verdict.
	Detail string `json:"detail,omitempty"`
}

// Report is the pairwise differential analysis of two runs.
type Report struct {
	Schema string `json:"schema"`

	NameA string `json:"a"`
	NameB string `json:"b"`

	FingerprintA string `json:"fingerprint_a,omitempty"`
	FingerprintB string `json:"fingerprint_b,omitempty"`

	// Ops holds one verdict per operation in the union of the two
	// runs, most severe (highest score) first, unchanged last.
	Ops []OpDiff `json:"ops"`

	// Changed counts the operations whose verdict flags a difference.
	Changed int `json:"changed"`

	// Layers attributes each changed traced operation to the layer
	// whose decomposed latency moved (internal/trace op@layer
	// profiles). Absent entirely for untraced runs, so their JSON
	// reports are byte-identical to the pre-trace schema.
	Layers []LayerMove `json:"layers,omitempty"`

	// Loads attributes each changed load-profiled operation to the
	// load band where it moved (internal/load op@load:band profiles).
	// Absent entirely for unconditioned runs, keeping their JSON
	// byte-identical to the pre-load schema.
	Loads []LoadMove `json:"loads,omitempty"`
}

// Regression reports whether any operation changed.
func (r *Report) Regression() bool { return r.Changed > 0 }

// ChangedOps returns the flagged operations.
func (r *Report) ChangedOps() []OpDiff {
	var out []OpDiff
	for _, d := range r.Ops {
		if d.Verdict.Changed() {
			out = append(out, d)
		}
	}
	return out
}

// LayerMove names the layer that moved under one traced operation: of
// the operation's per-layer decomposition profiles (read@fs, read@disk,
// ...), the one whose own differential verdict scored highest — or,
// when no single layer profile was flagged, the one whose mean
// self-latency moved farthest. CritA/CritB give each run's dominant
// critical-path layer (the op@crit:layer profile with the most
// inclusive latency), so a reader sees both which layer moved and
// whether the move changed what dominates the request.
type LayerMove struct {
	// Op is the base operation ("read"), without the layer suffix.
	Op string `json:"op"`

	// Layer is the moving layer ("vfs", "fs", "pagecache", "driver",
	// "disk", "net").
	Layer string `json:"layer"`

	// Verdict and Score are the moving layer profile's own diff
	// verdict (Unchanged when the attribution fell back to mean
	// movement).
	Verdict Verdict `json:"verdict"`
	Score   float64 `json:"score"`

	// MeanA and MeanB are the moving layer's mean self-latency in
	// cycles on each side.
	MeanA uint64 `json:"mean_a"`
	MeanB uint64 `json:"mean_b"`

	// CritA and CritB are each side's dominant critical-path layer.
	CritA string `json:"crit_a,omitempty"`
	CritB string `json:"crit_b,omitempty"`

	// Detail is a human-readable explanation.
	Detail string `json:"detail,omitempty"`
}

// layerAgg accumulates one base operation's layer rows during the
// attribution walk.
type layerAgg struct {
	base               string
	layers             []OpDiff
	changed            bool // base op or any layer row flagged
	critA              string
	critB              string
	critTotA, critTotB uint64
}

// layerMoves computes the per-operation layer attribution from a
// classified op list. Only operations with traced layer profiles and a
// flagged change (on the base op or any of its layer rows) produce an
// entry; an untraced diff returns nil.
func layerMoves(ops []OpDiff) []LayerMove {
	aggs := make(map[string]*layerAgg)
	var order []string
	get := func(base string) *layerAgg {
		a, ok := aggs[base]
		if !ok {
			a = &layerAgg{base: base}
			aggs[base] = a
			order = append(order, base)
		}
		return a
	}
	baseChanged := make(map[string]bool)
	for _, d := range ops {
		base, layer, crit, ok := trace.SplitOp(d.Op)
		if !ok {
			if d.Verdict.Changed() {
				baseChanged[d.Op] = true
			}
			continue
		}
		a := get(base)
		if crit {
			if d.CountA > 0 && (a.critA == "" || d.TotalA > a.critTotA) {
				a.critA, a.critTotA = layer, d.TotalA
			}
			if d.CountB > 0 && (a.critB == "" || d.TotalB > a.critTotB) {
				a.critB, a.critTotB = layer, d.TotalB
			}
			continue
		}
		a.layers = append(a.layers, d)
		if d.Verdict.Changed() {
			a.changed = true
		}
	}

	var out []LayerMove
	for _, base := range order {
		a := aggs[base]
		if len(a.layers) == 0 || !(a.changed || baseChanged[base]) {
			continue
		}
		// Prefer the flagged layer row with the highest score; fall
		// back to the largest absolute mean movement when only the
		// base operation was flagged.
		best := -1
		for i, d := range a.layers {
			if !d.Verdict.Changed() {
				continue
			}
			if best < 0 || d.Score > a.layers[best].Score {
				best = i
			}
		}
		if best < 0 {
			var bestDelta uint64
			for i, d := range a.layers {
				ma, mb := mean(d.TotalA, d.CountA), mean(d.TotalB, d.CountB)
				delta := ma - mb
				if mb > ma {
					delta = mb - ma
				}
				if best < 0 || delta > bestDelta {
					best, bestDelta = i, delta
				}
			}
		}
		d := a.layers[best]
		_, layer, _, _ := trace.SplitOp(d.Op)
		mv := LayerMove{
			Op: base, Layer: layer,
			Verdict: d.Verdict, Score: d.Score,
			MeanA: mean(d.TotalA, d.CountA), MeanB: mean(d.TotalB, d.CountB),
			CritA: a.critA, CritB: a.critB,
		}
		mv.Detail = fmt.Sprintf("%s self-mean %d -> %d cycles", layer, mv.MeanA, mv.MeanB)
		if mv.CritA != "" && mv.CritB != "" && mv.CritA != mv.CritB {
			mv.Detail += fmt.Sprintf("; critical path moved %s -> %s", mv.CritA, mv.CritB)
		}
		out = append(out, mv)
	}
	sort.SliceStable(out, func(i, j int) bool {
		x, y := out[i], out[j]
		if x.Score != y.Score {
			return x.Score > y.Score
		}
		return x.Op < y.Op
	})
	return out
}

func mean(total, count uint64) uint64 {
	if count == 0 {
		return 0
	}
	return total / count
}

// Engine performs differential analyses. It carries a Selector (with
// its reusable comparison scratch), so create one and reuse it; an
// Engine must not be used from multiple goroutines concurrently.
type Engine struct {
	// Selector is the three-phase pair analysis configuration.
	Selector *analysis.Selector

	// Guard enables the summary-first fast path: when positive, Sets
	// first compares the two sets' alloc-free summary digests and
	// skips the full selector entirely when every operation pair is
	// summary-close — identical histograms, or same structure (mode,
	// span, filled buckets) with every sampled quantile within Guard
	// fractional buckets (summary.WithinGuard). Any operation outside
	// the band escalates the WHOLE pair to the full analysis, so every
	// escalated verdict is bit-identical to the always-full path. The
	// zero value (New) disables the fast path.
	Guard float64

	// sumA, sumB are the fast path's reusable summary scratch.
	sumA, sumB summary.SetSummary
}

// New returns an engine with the repository's default selector (EMD,
// the paper's recommended metric) and no summary fast path.
func New() *Engine {
	return &Engine{Selector: analysis.DefaultSelector()}
}

// NewSummaryFirst returns an engine that screens every pair with the
// calibrated summary guard band before running the full differential
// analysis — the service and bench configuration. The parity tests pin
// its verdicts against New across the scenario matrix, fault corpus
// included.
func NewSummaryFirst() *Engine {
	return &Engine{Selector: analysis.DefaultSelector(), Guard: summary.DefaultGuard}
}

// Sets runs the differential analysis over two profile sets.
func (e *Engine) Sets(a, b *core.Set) *Report {
	if e.Guard > 0 {
		if rep, ok := e.summaryFast(a, b); ok {
			return rep
		}
	}
	rep := &Report{Schema: Schema, NameA: a.Name, NameB: b.Name}
	for _, pr := range e.Selector.Compare(a, b) {
		d := e.classify(pr)
		rep.Ops = append(rep.Ops, d)
		if d.Verdict.Changed() {
			rep.Changed++
		}
	}
	// Re-rank after classification: one-sided ops enter the selector's
	// ordering as phase-1 skips (score 0) but classify rewrites their
	// score and verdict, so the selector's sort no longer holds.
	sort.SliceStable(rep.Ops, func(i, j int) bool {
		x, y := rep.Ops[i], rep.Ops[j]
		if x.Verdict.Changed() != y.Verdict.Changed() {
			return x.Verdict.Changed()
		}
		if x.Score != y.Score {
			return x.Score > y.Score
		}
		return x.Op < y.Op
	})
	rep.Layers = layerMoves(rep.Ops)
	rep.Loads = loadMoves(rep.Ops)
	return rep
}

// Runs is Sets over archived run envelopes, carrying the fingerprints
// into the report so a reader can tell which configurations were
// compared.
func (e *Engine) Runs(a, b *core.Run) *Report {
	rep := e.Sets(a.Set, b.Set)
	rep.FingerprintA = a.Fingerprint
	rep.FingerprintB = b.Fingerprint
	return rep
}

// classify converts one selector pair report into a verdict. The
// analysis.PairReport is backed by the Selector's scratch buffers, so
// everything retained (ModeShifts) is copied out.
func (e *Engine) classify(r analysis.PairReport) OpDiff {
	d := OpDiff{
		Op:     r.Op,
		Score:  r.Score,
		CountA: r.A.Count, CountB: r.B.Count,
		TotalA: r.A.Total, TotalB: r.B.Total,
		PeaksA: len(r.PeaksA), PeaksB: len(r.PeaksB),
	}
	switch {
	case r.A.Count == 0 && r.B.Count > 0:
		d.Verdict = NewOp
		d.Score = analysis.Score(e.Selector.Method, r.A, r.B)
		d.Detail = fmt.Sprintf("only in B (%d ops)", r.B.Count)
	case r.B.Count == 0 && r.A.Count > 0:
		d.Verdict = MissingOp
		d.Score = analysis.Score(e.Selector.Method, r.A, r.B)
		d.Detail = fmt.Sprintf("only in A (%d ops)", r.A.Count)
	case r.Skipped || !r.Interesting:
		d.Verdict = Unchanged
		d.Detail = r.Reason
	case moved(r.Diff.Moved):
		d.Verdict = ShiftedPeak
		d.ModeShifts = append([]int(nil), r.Diff.Moved...)
		d.Detail = fmt.Sprintf("mode shifts %v", d.ModeShifts)
	case r.Diff.NewPeaks > 0:
		d.Verdict = NewPeak
		d.Detail = fmt.Sprintf("+%d peaks", r.Diff.NewPeaks)
	case r.Diff.LostPeaks > 0:
		d.Verdict = LostPeak
		d.Detail = fmt.Sprintf("-%d peaks", r.Diff.LostPeaks)
	default:
		d.Verdict = Reshaped
		d.Detail = fmt.Sprintf("score %.3g over threshold", r.Score)
	}
	return d
}

// summaryFast is the summary-first screen: extract both sets' digests
// (alloc-free after warmup) and, when every operation pair sits inside
// the guard band, emit an all-unchanged report without touching the
// selector. ok is false when anything — a one-sided operation, a
// resolution mismatch, any structural or quantile movement — requires
// the full analysis; the caller then runs the always-full path, so a
// fast-path miss costs one cheap digest walk, never a wrong verdict.
func (e *Engine) summaryFast(a, b *core.Set) (*Report, bool) {
	if a == nil || b == nil || a.R != b.R {
		return nil, false
	}
	e.sumA.From(a, 0)
	e.sumB.From(b, 0)
	sa, sb := e.sumA.Ops, e.sumB.Ops

	// Pass 1: every union operation must be within the guard band. An
	// op present on one side only passes only when empty on the other
	// (the selector's own "recorded zero times" skip); mass against
	// absence is new-op/missing-op and escalates.
	i, j := 0, 0
	for i < len(sa) || j < len(sb) {
		switch {
		case j >= len(sb) || (i < len(sa) && sa[i].Op < sb[j].Op):
			if sa[i].Count > 0 {
				return nil, false
			}
			i++
		case i >= len(sa) || sb[j].Op < sa[i].Op:
			if sb[j].Count > 0 {
				return nil, false
			}
			j++
		default:
			if !summary.WithinGuard(sa[i], sb[j], e.Guard) {
				return nil, false
			}
			i++
			j++
		}
	}

	// Pass 2: everything within the band — emit the all-unchanged
	// report (op order is sorted; with no changed ops the full path's
	// ranking degenerates to the same order for summary-equal rows).
	rep := &Report{Schema: Schema, NameA: a.Name, NameB: b.Name}
	row := func(x, y *summary.Summary) {
		d := OpDiff{Verdict: Unchanged, Detail: "summaries within guard band"}
		if x != nil {
			d.Op, d.CountA, d.TotalA = x.Op, x.Count, x.Total
		}
		if y != nil {
			d.Op, d.CountB, d.TotalB = y.Op, y.Count, y.Total
		}
		rep.Ops = append(rep.Ops, d)
	}
	i, j = 0, 0
	for i < len(sa) || j < len(sb) {
		switch {
		case j >= len(sb) || (i < len(sa) && sa[i].Op < sb[j].Op):
			row(&sa[i], nil)
			i++
		case i >= len(sa) || sb[j].Op < sa[i].Op:
			row(nil, &sb[j])
			j++
		default:
			row(&sa[i], &sb[j])
			i++
			j++
		}
	}
	return rep, true
}

func moved(shifts []int) bool {
	for _, m := range shifts {
		if m != 0 {
			return true
		}
	}
	return false
}

// Pair names one matched run pair of a matrix diff.
type Pair struct {
	Name string `json:"name"`
	*Report
}

// MatrixReport is the matrix-wide differential analysis: every run of
// side A held against the like-named run of side B (the paper's table
// of OS-version comparisons across a whole scenario matrix).
type MatrixReport struct {
	Schema string `json:"schema"`

	// Pairs holds one pairwise report per matched run name, in side-A
	// order.
	Pairs []Pair `json:"pairs"`

	// OnlyA and OnlyB list run names present on a single side.
	OnlyA []string `json:"only_a,omitempty"`
	OnlyB []string `json:"only_b,omitempty"`

	// Changed counts changed operations across all matched pairs;
	// unmatched runs count as one change each.
	Changed int `json:"changed"`
}

// Regression reports whether anything changed anywhere in the matrix.
func (m *MatrixReport) Regression() bool { return m.Changed > 0 }

// Matrix diffs two run slices pairwise, matching runs by set name.
func (e *Engine) Matrix(as, bs []*core.Run) *MatrixReport {
	m := &MatrixReport{Schema: Schema}
	byName := make(map[string]*core.Run, len(bs))
	for _, b := range bs {
		byName[b.Name()] = b
	}
	matched := make(map[string]bool, len(as))
	for _, a := range as {
		b, ok := byName[a.Name()]
		if !ok {
			m.OnlyA = append(m.OnlyA, a.Name())
			m.Changed++
			continue
		}
		matched[a.Name()] = true
		rep := e.Runs(a, b)
		m.Pairs = append(m.Pairs, Pair{Name: a.Name(), Report: rep})
		m.Changed += rep.Changed
	}
	for _, b := range bs {
		if !matched[b.Name()] {
			m.OnlyB = append(m.OnlyB, b.Name())
			m.Changed++
		}
	}
	return m
}
