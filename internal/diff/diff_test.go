package diff

import (
	"encoding/json"
	"testing"

	"osprof/internal/core"
)

// mkSet builds a set with one dominant op from bucket->count pairs.
func mkSet(name, op string, buckets map[int]uint64) *core.Set {
	s := core.NewSet(name)
	p := s.Get(op)
	for b, c := range buckets {
		for i := uint64(0); i < c; i++ {
			p.Record(uint64(1) << b)
		}
	}
	return s
}

func TestIdenticalSetsUnchanged(t *testing.T) {
	mk := func() *core.Set {
		return mkSet("a", "read", map[int]uint64{6: 1000, 13: 50})
	}
	rep := New().Sets(mk(), mk())
	if rep.Changed != 0 || rep.Regression() {
		t.Fatalf("identical sets flagged: %+v", rep)
	}
	for _, op := range rep.Ops {
		if op.Verdict != Unchanged {
			t.Errorf("%s: verdict %s", op.Op, op.Verdict)
		}
	}
	if rep.Schema != Schema {
		t.Errorf("schema %q", rep.Schema)
	}
}

func TestNewPeakVerdict(t *testing.T) {
	a := mkSet("a", "read", map[int]uint64{6: 100000})
	b := mkSet("b", "read", map[int]uint64{6: 100000, 20: 40})
	rep := New().Sets(a, b)
	op := rep.Ops[0]
	if op.Verdict != NewPeak {
		t.Fatalf("verdict %s, want new-peak (%+v)", op.Verdict, op)
	}
	if op.Score <= 0 {
		t.Errorf("new peak scored %v, want nonzero EMD", op.Score)
	}
	if op.PeaksA != 1 || op.PeaksB != 2 {
		t.Errorf("peaks %d->%d", op.PeaksA, op.PeaksB)
	}
	if rep.Changed != 1 {
		t.Errorf("changed=%d", rep.Changed)
	}
	// The reverse direction loses the peak.
	if v := New().Sets(b, a).Ops[0].Verdict; v != LostPeak {
		t.Errorf("reverse verdict %s, want lost-peak", v)
	}
}

func TestShiftedPeakVerdict(t *testing.T) {
	a := mkSet("a", "read", map[int]uint64{6: 1000})
	b := mkSet("b", "read", map[int]uint64{9: 1000})
	rep := New().Sets(a, b)
	op := rep.Ops[0]
	if op.Verdict != ShiftedPeak {
		t.Fatalf("verdict %s, want shifted-peak (%+v)", op.Verdict, op)
	}
	if len(op.ModeShifts) != 1 || op.ModeShifts[0] != 3 {
		t.Errorf("mode shifts %v, want [3]", op.ModeShifts)
	}
	if op.Score <= 0 {
		t.Errorf("shifted peak scored %v", op.Score)
	}
}

func TestNewAndMissingOpVerdicts(t *testing.T) {
	a := mkSet("a", "read", map[int]uint64{6: 1000})
	b := mkSet("b", "read", map[int]uint64{6: 1000})
	b.Get("llseek")
	for i := 0; i < 800; i++ {
		b.Lookup("llseek").Record(1 << 7)
	}
	rep := New().Sets(a, b)
	var llseek *OpDiff
	for i := range rep.Ops {
		if rep.Ops[i].Op == "llseek" {
			llseek = &rep.Ops[i]
		}
	}
	if llseek == nil || llseek.Verdict != NewOp {
		t.Fatalf("llseek verdict: %+v", llseek)
	}
	if llseek.Score != 1 {
		t.Errorf("one-sided EMD = %v, want 1", llseek.Score)
	}
	// Reverse: the op disappears.
	rep = New().Sets(b, a)
	for _, op := range rep.Ops {
		if op.Op == "llseek" && op.Verdict != MissingOp {
			t.Errorf("reverse verdict %s, want missing-op", op.Verdict)
		}
	}
}

// A tiny op present on one side only is still flagged even though the
// selector's phase 1 would skip it as a small share: disappearing
// operations are regressions regardless of their latency share.
func TestOneSidedSmallShareStillFlagged(t *testing.T) {
	a := mkSet("a", "read", map[int]uint64{6: 100000})
	b := mkSet("b", "read", map[int]uint64{6: 100000})
	a.Get("unlink").Record(1 << 6) // one call, ~0% share
	rep := New().Sets(a, b)
	found := false
	for _, op := range rep.Ops {
		if op.Op == "unlink" {
			found = true
			if op.Verdict != MissingOp {
				t.Errorf("unlink verdict %s, want missing-op", op.Verdict)
			}
		}
	}
	if !found {
		t.Fatal("unlink missing from the report")
	}
	// Ordering contract: the flagged one-sided op must sort into the
	// changed block at the top, not linger in the selector's trailing
	// skipped block where its pre-classification score placed it.
	if rep.Ops[0].Op != "unlink" || !rep.Ops[0].Verdict.Changed() {
		t.Errorf("changed one-sided op not ranked first: %+v", rep.Ops)
	}
}

func TestChangedOpsOrderedFirstBySeverity(t *testing.T) {
	a := mkSet("a", "read", map[int]uint64{6: 1000})
	a.Get("write")
	for i := 0; i < 900; i++ {
		a.Lookup("write").Record(1 << 6)
	}
	b := mkSet("b", "read", map[int]uint64{16: 1000}) // read shifted a lot
	b.Get("write")
	for i := 0; i < 900; i++ {
		b.Lookup("write").Record(1 << 6) // write unchanged
	}
	rep := New().Sets(a, b)
	if rep.Ops[0].Op != "read" || !rep.Ops[0].Verdict.Changed() {
		t.Errorf("most severe change not first: %+v", rep.Ops)
	}
	changed := rep.ChangedOps()
	if len(changed) != 1 || changed[0].Op != "read" {
		t.Errorf("ChangedOps = %+v", changed)
	}
}

func TestRunsCarryFingerprints(t *testing.T) {
	a := &core.Run{Fingerprint: "fpA", Set: mkSet("a", "read", map[int]uint64{6: 10})}
	b := &core.Run{Fingerprint: "fpB", Set: mkSet("b", "read", map[int]uint64{6: 10})}
	rep := New().Runs(a, b)
	if rep.FingerprintA != "fpA" || rep.FingerprintB != "fpB" {
		t.Errorf("fingerprints lost: %+v", rep)
	}
	if rep.NameA != "a" || rep.NameB != "b" {
		t.Errorf("names lost: %+v", rep)
	}
}

func TestMatrixMatchesByName(t *testing.T) {
	mk := func(name string, shift int) *core.Run {
		return &core.Run{Set: mkSet(name, "read", map[int]uint64{6 + shift: 1000})}
	}
	as := []*core.Run{mk("s1", 0), mk("s2", 0), mk("gone", 0)}
	bs := []*core.Run{mk("s1", 0), mk("s2", 4), mk("fresh", 0)}
	m := New().Matrix(as, bs)
	if len(m.Pairs) != 2 {
		t.Fatalf("pairs: %+v", m.Pairs)
	}
	if m.Pairs[0].Name != "s1" || m.Pairs[0].Changed != 0 {
		t.Errorf("s1: %+v", m.Pairs[0])
	}
	if m.Pairs[1].Name != "s2" || m.Pairs[1].Changed != 1 {
		t.Errorf("s2: %+v", m.Pairs[1])
	}
	if len(m.OnlyA) != 1 || m.OnlyA[0] != "gone" ||
		len(m.OnlyB) != 1 || m.OnlyB[0] != "fresh" {
		t.Errorf("unmatched: %v / %v", m.OnlyA, m.OnlyB)
	}
	// 1 changed op + 2 unmatched runs.
	if m.Changed != 3 || !m.Regression() {
		t.Errorf("Changed = %d, want 3", m.Changed)
	}
}

// The JSON shape is a published interface (Schema); pin the key names.
func TestReportJSONShape(t *testing.T) {
	a := mkSet("a", "read", map[int]uint64{6: 1000})
	b := mkSet("b", "read", map[int]uint64{9: 1000})
	data, err := json.Marshal(New().Sets(a, b))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "a", "b", "ops", "changed"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON missing key %q: %s", key, data)
		}
	}
	ops := m["ops"].([]any)
	op := ops[0].(map[string]any)
	for _, key := range []string{"op", "verdict", "score", "count_a", "count_b", "peaks_a", "peaks_b"} {
		if _, ok := op[key]; !ok {
			t.Errorf("op JSON missing key %q: %s", key, data)
		}
	}
}
