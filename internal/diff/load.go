package diff

import (
	"fmt"
	"sort"
	"strings"

	"osprof/internal/load"
)

// LoadMove attributes one changed load-profiled operation to the load
// band where it moved, splitting "read got slower" into "slower at
// load 1" (the operation itself regressed) vs "only slower under
// contention" (a scheduling or locking effect). Bands carries every
// band's own verdict so the full picture — "unchanged at load:1,
// shifted-peak at load:5+" — is directly readable.
type LoadMove struct {
	// Op is the base operation ("read"), without the load suffix.
	Op string `json:"op"`

	// Band is the moving band ("1", "2-4", "5+").
	Band string `json:"band"`

	// Verdict and Score are the moving band profile's own diff verdict
	// (Unchanged when the attribution fell back to mean movement).
	Verdict Verdict `json:"verdict"`
	Score   float64 `json:"score"`

	// MeanA and MeanB are the moving band's mean latency in cycles on
	// each side.
	MeanA uint64 `json:"mean_a"`
	MeanB uint64 `json:"mean_b"`

	// Bands holds every band's verdict, in band order.
	Bands []BandVerdict `json:"bands"`

	// Detail is a human-readable explanation.
	Detail string `json:"detail,omitempty"`
}

// BandVerdict is one band's verdict inside a LoadMove.
type BandVerdict struct {
	Band    string  `json:"band"`
	Verdict Verdict `json:"verdict"`
	Score   float64 `json:"score"`
	CountA  uint64  `json:"count_a"`
	CountB  uint64  `json:"count_b"`
}

// loadAgg accumulates one base operation's band rows during the
// attribution walk.
type loadAgg struct {
	base    string
	bands   []OpDiff
	changed bool // base op or any band row flagged
}

// loadMoves computes the per-operation load-band attribution from a
// classified op list. Only operations with load-keyed companion
// profiles and a flagged change (on the base op or any band row)
// produce an entry; an unconditioned diff returns nil, keeping its
// JSON byte-identical to the pre-load schema.
func loadMoves(ops []OpDiff) []LoadMove {
	aggs := make(map[string]*loadAgg)
	var order []string
	baseChanged := make(map[string]bool)
	for _, d := range ops {
		base, _, ok := load.SplitOp(d.Op)
		if !ok {
			if d.Verdict.Changed() {
				baseChanged[d.Op] = true
			}
			continue
		}
		a, seen := aggs[base]
		if !seen {
			a = &loadAgg{base: base}
			aggs[base] = a
			order = append(order, base)
		}
		a.bands = append(a.bands, d)
		if d.Verdict.Changed() {
			a.changed = true
		}
	}

	var out []LoadMove
	for _, base := range order {
		a := aggs[base]
		if len(a.bands) == 0 || !(a.changed || baseChanged[base]) {
			continue
		}
		sort.SliceStable(a.bands, func(i, j int) bool {
			_, x, _ := load.SplitOp(a.bands[i].Op)
			_, y, _ := load.SplitOp(a.bands[j].Op)
			return load.BandIndex(x) < load.BandIndex(y)
		})

		// Attribution order: a flagged band with samples on both sides
		// is a latency shift at that load — the strongest signal. With
		// only one-sided bands the *population* moved between loads:
		// prefer the new-op band with the most B-side samples (where
		// the workload's time went), then the largest drained band.
		// Fall back to the largest mean movement when only the base
		// operation was flagged.
		best := -1
		for i, d := range a.bands {
			if !d.Verdict.Changed() || d.CountA == 0 || d.CountB == 0 {
				continue
			}
			if best < 0 || d.Score > a.bands[best].Score {
				best = i
			}
		}
		if best < 0 {
			var bestCount uint64
			for i, d := range a.bands {
				if d.Verdict == NewOp && d.CountB > bestCount {
					best, bestCount = i, d.CountB
				}
			}
			if best < 0 {
				for i, d := range a.bands {
					if d.Verdict == MissingOp && d.CountA > bestCount {
						best, bestCount = i, d.CountA
					}
				}
			}
		}
		if best < 0 {
			var bestDelta uint64
			for i, d := range a.bands {
				ma, mb := mean(d.TotalA, d.CountA), mean(d.TotalB, d.CountB)
				delta := ma - mb
				if mb > ma {
					delta = mb - ma
				}
				if best < 0 || delta > bestDelta {
					best, bestDelta = i, delta
				}
			}
		}

		d := a.bands[best]
		_, band, _ := load.SplitOp(d.Op)
		mv := LoadMove{
			Op: base, Band: band,
			Verdict: d.Verdict, Score: d.Score,
			MeanA: mean(d.TotalA, d.CountA), MeanB: mean(d.TotalB, d.CountB),
		}
		var parts []string
		for _, bd := range a.bands {
			_, bn, _ := load.SplitOp(bd.Op)
			mv.Bands = append(mv.Bands, BandVerdict{
				Band: bn, Verdict: bd.Verdict, Score: bd.Score,
				CountA: bd.CountA, CountB: bd.CountB,
			})
			parts = append(parts, fmt.Sprintf("%s at load:%s", bd.Verdict, bn))
		}
		mv.Detail = strings.Join(parts, ", ")
		switch {
		case mv.Verdict == NewOp:
			mv.Detail += fmt.Sprintf("; samples moved into load:%s (%d -> %d ops)", band, d.CountA, d.CountB)
		case mv.Verdict == MissingOp:
			mv.Detail += fmt.Sprintf("; samples left load:%s (%d -> %d ops)", band, d.CountA, d.CountB)
		default:
			mv.Detail += fmt.Sprintf("; load:%s mean %d -> %d cycles", band, mv.MeanA, mv.MeanB)
		}
		out = append(out, mv)
	}
	sort.SliceStable(out, func(i, j int) bool {
		x, y := out[i], out[j]
		if x.Score != y.Score {
			return x.Score > y.Score
		}
		return x.Op < y.Op
	})
	return out
}
