package diff

import (
	"encoding/json"
	"strings"
	"testing"

	"osprof/internal/core"
)

// fill records count latencies of 1<<bucket into the set's op.
func fill(s *core.Set, op string, buckets map[int]uint64) {
	p := s.Get(op)
	for b, c := range buckets {
		for i := uint64(0); i < c; i++ {
			p.Record(uint64(1) << b)
		}
	}
}

// TestLoadAttributionShiftedPeak is the acceptance shape: the same
// operation unchanged when sampled alone but with its peak shifted
// under heavy contention. The attribution must blame load:5+ and the
// detail must spell out both band verdicts.
func TestLoadAttributionShiftedPeak(t *testing.T) {
	a, b := core.NewSet("a"), core.NewSet("b")
	for _, s := range []*core.Set{a, b} {
		fill(s, "read@load:1", map[int]uint64{6: 1000})
	}
	fill(a, "read@load:5+", map[int]uint64{8: 500})
	fill(b, "read@load:5+", map[int]uint64{12: 500})

	rep := New().Sets(a, b)
	if len(rep.Loads) != 1 {
		t.Fatalf("loads = %+v, want one entry", rep.Loads)
	}
	mv := rep.Loads[0]
	if mv.Op != "read" || mv.Band != "5+" || mv.Verdict != ShiftedPeak {
		t.Fatalf("attribution = %+v, want read shifted-peak at 5+", mv)
	}
	if len(mv.Bands) != 2 || mv.Bands[0].Band != "1" || mv.Bands[1].Band != "5+" {
		t.Fatalf("band rows = %+v", mv.Bands)
	}
	if mv.Bands[0].Verdict != Unchanged {
		t.Errorf("load:1 verdict = %s, want unchanged", mv.Bands[0].Verdict)
	}
	for _, want := range []string{"unchanged at load:1", "shifted-peak at load:5+"} {
		if !strings.Contains(mv.Detail, want) {
			t.Errorf("detail %q misses %q", mv.Detail, want)
		}
	}
	if mv.MeanA >= mv.MeanB {
		t.Errorf("means %d -> %d, want growth", mv.MeanA, mv.MeanB)
	}
}

// TestLoadAttributionPopulationMove covers the contention pair the CI
// smoke runs: every band is one-sided (the workload's samples moved
// from load:1 into the contended band), so the attribution must follow
// where the samples went, not the drained band.
func TestLoadAttributionPopulationMove(t *testing.T) {
	a, b := core.NewSet("a"), core.NewSet("b")
	fill(a, "read@load:1", map[int]uint64{6: 2000})
	fill(b, "read@load:2-4", map[int]uint64{9: 2000})

	rep := New().Sets(a, b)
	if len(rep.Loads) != 1 {
		t.Fatalf("loads = %+v, want one entry", rep.Loads)
	}
	mv := rep.Loads[0]
	if mv.Op != "read" || mv.Band != "2-4" || mv.Verdict != NewOp {
		t.Fatalf("attribution = %+v, want read new-op at 2-4", mv)
	}
	if !strings.Contains(mv.Detail, "samples moved into load:2-4") {
		t.Errorf("detail %q misses the population move", mv.Detail)
	}
}

// An unconditioned diff must not grow a loads key: the marshaled JSON
// stays byte-identical to the pre-load schema.
func TestUnconditionedDiffHasNoLoadsKey(t *testing.T) {
	a := mkSet("a", "read", map[int]uint64{6: 1000})
	b := mkSet("b", "read", map[int]uint64{9: 1000})
	rep := New().Sets(a, b)
	if rep.Loads != nil {
		t.Fatalf("unconditioned diff grew loads: %+v", rep.Loads)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "\"loads\"") {
		t.Error("unconditioned diff JSON contains a loads key")
	}
}

// A changed base op with unchanged band rows still yields an entry
// (fall back to the largest mean movement), so the load view never
// goes silent on a flagged load-profiled operation.
func TestLoadAttributionFallsBackToMeanMovement(t *testing.T) {
	a, b := core.NewSet("a"), core.NewSet("b")
	// The base op shifts; the band companions drift too little to flag.
	fill(a, "read", map[int]uint64{6: 1000})
	fill(b, "read", map[int]uint64{10: 1000})
	fill(a, "read@load:1", map[int]uint64{6: 1000})
	fill(b, "read@load:1", map[int]uint64{6: 999, 7: 1})

	rep := New().Sets(a, b)
	if len(rep.Loads) != 1 {
		t.Fatalf("loads = %+v, want the fallback entry", rep.Loads)
	}
	mv := rep.Loads[0]
	if mv.Op != "read" || mv.Band != "1" {
		t.Fatalf("fallback attribution = %+v", mv)
	}
}
