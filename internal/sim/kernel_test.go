package sim

import (
	"strings"
	"testing"

	"osprof/internal/cycles"
)

// quiet returns a config without timer interrupts so arithmetic on
// elapsed times is exact.
func quiet(ncpu int) Config {
	return Config{NumCPUs: ncpu, ContextSwitch: 100, TickPeriod: 0}
}

func TestSingleProcExecElapsed(t *testing.T) {
	k := New(quiet(1))
	var start, end uint64
	k.Spawn("w", func(p *Proc) {
		start = p.Now()
		p.Exec(1000)
		end = p.Now()
	})
	k.Run()
	// The process is dispatched at t=0 and charged one context switch
	// before its body runs; Exec(1000) then takes exactly 1000 cycles.
	if start != 100 {
		t.Errorf("start = %d, want 100 (one context switch)", start)
	}
	if end-start != 1000 {
		t.Errorf("exec elapsed = %d, want 1000", end-start)
	}
	if got := k.Now(); got != 1100 {
		t.Errorf("final clock = %d, want 1100", got)
	}
}

func TestExecAccountsSysVsUserCPU(t *testing.T) {
	k := New(quiet(1))
	var st ProcStats
	k.Spawn("w", func(p *Proc) {
		p.Exec(300)
		p.ExecUser(700)
		st = p.Stats()
	})
	k.Run()
	if st.SysCPU != 300 {
		t.Errorf("SysCPU = %d, want 300", st.SysCPU)
	}
	if st.UserCPU != 700 {
		t.Errorf("UserCPU = %d, want 700", st.UserCPU)
	}
}

func TestTwoProcsShareOneCPUFIFO(t *testing.T) {
	k := New(quiet(1))
	var order []string
	for _, name := range []string{"a", "b"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			p.Exec(500)
			order = append(order, name)
		})
	}
	k.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("completion order = %v, want [a b]", order)
	}
	// b waits for a's full slice: total = ctx+500 (a) + ctx+500 (b).
	if got := k.Now(); got != 1200 {
		t.Errorf("final clock = %d, want 1200", got)
	}
}

func TestTwoCPUsRunInParallel(t *testing.T) {
	k := New(quiet(2))
	for i := 0; i < 2; i++ {
		k.Spawn("w", func(p *Proc) { p.Exec(500) })
	}
	k.Run()
	if got := k.Now(); got != 600 {
		t.Errorf("final clock = %d, want 600 (parallel slices)", got)
	}
}

func TestSleepConsumesWallTimeNotCPU(t *testing.T) {
	k := New(quiet(1))
	var st ProcStats
	k.Spawn("w", func(p *Proc) {
		p.Sleep(10_000)
		st = p.Stats()
	})
	k.Run()
	if st.SysCPU != 0 || st.UserCPU != 0 {
		t.Errorf("CPU consumed during sleep: sys=%d user=%d", st.SysCPU, st.UserCPU)
	}
	if st.WaitBlocked < 10_000 {
		t.Errorf("WaitBlocked = %d, want >= 10000", st.WaitBlocked)
	}
	if got := k.Now(); got < 10_000 {
		t.Errorf("clock = %d, want >= 10000", got)
	}
}

func TestSleepReleasesCPUToOtherProc(t *testing.T) {
	k := New(quiet(1))
	var otherDone uint64
	k.Spawn("sleeper", func(p *Proc) { p.Sleep(1_000_000) })
	k.Spawn("worker", func(p *Proc) {
		p.Exec(100)
		otherDone = p.Now()
	})
	k.Run()
	if otherDone >= 1_000_000 {
		t.Errorf("worker finished at %d; should have run during sleep", otherDone)
	}
}

func TestTimerTickInflatesExecution(t *testing.T) {
	k := New(Config{
		NumCPUs:       1,
		ContextSwitch: 100,
		TickPeriod:    10_000,
		TickCost:      1_000,
	})
	var elapsed uint64
	k.Spawn("w", func(p *Proc) {
		start := p.Now()
		p.Exec(35_000)
		elapsed = p.Now() - start
	})
	k.Run()
	// Ticks at 10k, 20k, 30k land inside the work (which starts at 100
	// and would otherwise end at 35100); each adds 1000 cycles.
	want := uint64(35_000 + 3*1_000)
	if elapsed != want {
		t.Errorf("elapsed = %d, want %d (3 tick inflations)", elapsed, want)
	}
	if k.Stats().TimerTicks < 3 {
		t.Errorf("ticks = %d, want >= 3", k.Stats().TimerTicks)
	}
}

func TestPreemptionOnlyWithKernelPreemption(t *testing.T) {
	run := func(preemptive bool) (preemptions uint64) {
		k := New(Config{
			NumCPUs:       1,
			ContextSwitch: 100,
			TickPeriod:    10_000,
			TickCost:      100,
			Quantum:       20_000,
			Preemptive:    preemptive,
		})
		for i := 0; i < 2; i++ {
			k.Spawn("w", func(p *Proc) {
				for j := 0; j < 20; j++ {
					p.Exec(10_000) // kernel-mode CPU burn
				}
			})
		}
		k.Run()
		return k.Stats().Preemptions
	}
	if got := run(false); got != 0 {
		t.Errorf("non-preemptive kernel preempted kernel-mode exec %d times", got)
	}
	if got := run(true); got == 0 {
		t.Errorf("preemptive kernel never preempted despite quantum expiry")
	}
}

func TestUserModePreemptedOnAnyKernel(t *testing.T) {
	k := New(Config{
		NumCPUs:       1,
		ContextSwitch: 100,
		TickPeriod:    10_000,
		TickCost:      100,
		Quantum:       20_000,
		Preemptive:    false,
	})
	for i := 0; i < 2; i++ {
		k.Spawn("w", func(p *Proc) {
			for j := 0; j < 20; j++ {
				p.ExecUser(10_000)
			}
		})
	}
	k.Run()
	if k.Stats().Preemptions == 0 {
		t.Error("user-mode execution was never preempted")
	}
}

func TestPreemptedFlagAndLatencyInflation(t *testing.T) {
	k := New(Config{
		NumCPUs:       1,
		ContextSwitch: 100,
		TickPeriod:    5_000,
		TickCost:      10,
		Quantum:       5_000,
		Preemptive:    true,
	})
	var sawPreempt bool
	var maxLatency uint64
	body := func(p *Proc) {
		for j := 0; j < 100; j++ {
			start := p.Now()
			p.Exec(1_000)
			lat := p.Now() - start
			if p.Preempted() {
				sawPreempt = true
				if lat > maxLatency {
					maxLatency = lat
				}
			}
		}
	}
	k.Spawn("a", body)
	k.Spawn("b", body)
	k.Run()
	if !sawPreempt {
		t.Fatal("no request observed preemption")
	}
	// A preempted request waits roughly a full quantum of the other
	// process; far more than its own 1000-cycle cost.
	if maxLatency < 4_000 {
		t.Errorf("preempted request latency = %d, want >= 4000", maxLatency)
	}
}

func TestReadTSCSkew(t *testing.T) {
	k := New(Config{NumCPUs: 2, ContextSwitch: 10, TSCSkew: []int64{0, 35}})
	var onCPU1 uint64
	var global uint64
	k.Spawn("w", func(p *Proc) {
		p.Exec(100)
		// Force this proc onto CPU by construction: with one proc and
		// FIFO dispatch it lands on CPU 0; spawn order controls this.
		global = p.Now()
		_ = global
	})
	k.Spawn("w2", func(p *Proc) {
		p.Exec(100)
		onCPU1 = p.ReadTSC() - p.Now()
	})
	k.Run()
	if onCPU1 != 35 {
		t.Errorf("TSC skew on CPU1 = %d, want 35", onCPU1)
	}
}

func TestWaitFor(t *testing.T) {
	k := New(quiet(2))
	var childEnd, parentSaw uint64
	child := k.Spawn("child", func(p *Proc) {
		p.Exec(5_000)
		childEnd = p.Now()
	})
	k.Spawn("parent", func(p *Proc) {
		p.Exec(10)
		p.WaitFor(child)
		parentSaw = p.Now()
	})
	k.Run()
	if parentSaw < childEnd {
		t.Errorf("parent resumed at %d before child finished at %d", parentSaw, childEnd)
	}
}

func TestDaemonDoesNotBlockRunExit(t *testing.T) {
	k := New(quiet(1))
	ticks := 0
	k.SpawnDaemon("flusher", func(p *Proc) {
		for {
			p.Sleep(1_000)
			ticks++
		}
	})
	k.Spawn("w", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Exec(500)
			p.Sleep(1_500) // daemon gets the CPU while we sleep
		}
	})
	k.Run()
	if ticks == 0 {
		t.Error("daemon never ran")
	}
	if got := k.Now(); got > 10_000 {
		t.Errorf("Run kept going for the daemon: clock=%d", got)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		if !strings.Contains(r.(string), "deadlock") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	k := New(quiet(1))
	k.Spawn("stuck", func(p *Proc) { p.Block("never-woken") })
	k.Run()
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, Stats) {
		k := New(Config{
			NumCPUs:       2,
			ContextSwitch: 100,
			TickPeriod:    7_000,
			TickCost:      150,
			Quantum:       30_000,
			Preemptive:    true,
			Seed:          42,
		})
		sem := NewSemaphore(k, "s")
		for i := 0; i < 4; i++ {
			k.Spawn("w", func(p *Proc) {
				for j := 0; j < 50; j++ {
					n := uint64(k.Rand().Intn(2_000)) + 100
					p.Exec(n)
					sem.Down(p)
					p.Exec(500)
					sem.Up(p)
				}
			})
		}
		k.Run()
		return k.Now(), k.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Errorf("non-deterministic: (%d,%+v) vs (%d,%+v)", t1, s1, t2, s2)
	}
}

func TestYieldCPU(t *testing.T) {
	k := New(quiet(1))
	var order []string
	k.Spawn("a", func(p *Proc) {
		p.Exec(100)
		p.YieldCPU()
		p.Exec(100)
		order = append(order, "a")
	})
	k.Spawn("b", func(p *Proc) {
		p.Exec(100)
		order = append(order, "b")
	})
	k.Run()
	if len(order) != 2 || order[0] != "b" {
		t.Errorf("order = %v, want b before a (a yielded)", order)
	}
}

func TestDefaultConfig(t *testing.T) {
	k := New(Config{})
	cfg := k.Config()
	if cfg.NumCPUs != 1 {
		t.Errorf("NumCPUs = %d, want 1", cfg.NumCPUs)
	}
	if cfg.Quantum != cycles.SchedulingQuantum {
		t.Errorf("Quantum = %d, want %d", cfg.Quantum, uint64(cycles.SchedulingQuantum))
	}
	if cfg.ContextSwitch != cycles.ContextSwitch {
		t.Errorf("ContextSwitch = %d, want %d", cfg.ContextSwitch, uint64(cycles.ContextSwitch))
	}
}

func TestManyProcsStress(t *testing.T) {
	k := New(Config{
		NumCPUs:       4,
		ContextSwitch: 100,
		TickPeriod:    50_000,
		TickCost:      500,
		Quantum:       200_000,
		Preemptive:    true,
		Seed:          7,
	})
	total := 0
	for i := 0; i < 32; i++ {
		k.Spawn("w", func(p *Proc) {
			for j := 0; j < 100; j++ {
				p.Exec(uint64(k.Rand().Intn(5_000)) + 1)
			}
			total++
		})
	}
	k.Run()
	if total != 32 {
		t.Errorf("finished procs = %d, want 32", total)
	}
}
