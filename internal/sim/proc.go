package sim

import "fmt"

// procState tracks where a process is in its lifecycle.
type procState int

const (
	stateNew procState = iota
	stateRunnable
	stateRunning
	stateBlocked
	stateSpinning
	stateFinished
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateRunnable:
		return "runnable"
	case stateRunning:
		return "running"
	case stateBlocked:
		return "blocked"
	case stateSpinning:
		return "spinning"
	case stateFinished:
		return "finished"
	}
	return fmt.Sprintf("procState(%d)", int(s))
}

// Proc is a simulated process. Its body runs in a goroutine, but only
// while the kernel has explicitly handed it control; every simulation
// primitive (Exec, Sleep, semaphores, I/O) yields back to the kernel.
//
// Code between primitive calls takes zero simulated time: only Exec
// advances the process's CPU clock. This mirrors how the paper thinks
// about latency: operations are sums of exec, lock, interrupt and I/O
// components (Eq. 2), each of which is explicit here.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	daemon bool

	state       procState
	cpu         *cpu
	lastCPU     int
	resume      chan struct{}
	yield       chan struct{}
	blockReason string

	// Pre-bound callbacks, created once at spawn so that the hot
	// scheduling paths never allocate a closure (see Kernel.spawn).
	sliceDoneFn func()
	wakeFn      func()
	resumeFn    func()

	// exec state
	execRemaining uint64 // exec cycles still owed
	execUser      bool   // current exec is user mode
	overhead      uint64 // pending non-exec work (ctx switch, tick handler)
	sliceStart    uint64
	sliceEvent    *event
	cpuAcquired   uint64 // when this CPU assignment began (quantum base)
	runnableAt    uint64
	blockedAt     uint64
	wasPreempted  bool

	// per-process accounting
	userCPU         uint64
	sysCPU          uint64
	spinTime        uint64
	interruptTime   uint64
	waitBlocked     uint64
	waitRunnable    uint64
	preemptions     uint64
	contextSwitches uint64

	waiters        []*Proc
	cleanupPending bool
}

// ProcStats is a snapshot of per-process accounting.
type ProcStats struct {
	UserCPU         uint64
	SysCPU          uint64
	SpinTime        uint64
	InterruptTime   uint64
	WaitBlocked     uint64
	WaitRunnable    uint64
	Preemptions     uint64
	ContextSwitches uint64
}

// ID returns the process identifier (dense, starting at 0).
func (p *Proc) ID() int { return p.id }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Daemon reports whether the process was spawned as a kernel daemon
// (SpawnDaemon). Layer tracing skips daemons: a flusher's own writeback
// must not open request spans — its cost surfaces instead as lock and
// I/O wait inside the victim requests it delays.
func (p *Proc) Daemon() bool { return p.daemon }

// Kernel returns the machine this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Stats returns a snapshot of this process's accounting counters.
func (p *Proc) Stats() ProcStats {
	return ProcStats{
		UserCPU:         p.userCPU,
		SysCPU:          p.sysCPU,
		SpinTime:        p.spinTime,
		InterruptTime:   p.interruptTime,
		WaitBlocked:     p.waitBlocked,
		WaitRunnable:    p.waitRunnable,
		Preemptions:     p.preemptions,
		ContextSwitches: p.contextSwitches,
	}
}

// Preempted reports whether the process has been forcibly preempted
// since the flag was last cleared, and clears it. Experiments use it to
// classify requests, mirroring the paper's Figure 3 analysis.
func (p *Proc) Preempted() bool {
	was := p.wasPreempted
	p.wasPreempted = false
	return was
}

// top is the goroutine entry point wrapping the process body.
func (p *Proc) top(fn func(p *Proc)) {
	<-p.resume // wait for first dispatch
	fn(p)
	p.state = stateFinished
	p.cleanupPending = true
	p.yield <- struct{}{}
}

// yieldToKernel returns control to the kernel loop and blocks until the
// kernel resumes this process.
func (p *Proc) yieldToKernel() {
	p.yield <- struct{}{}
	<-p.resume
}

// ReadTSC returns the per-CPU cycle counter, including the configured
// skew of the CPU the process last ran on. It models the rdtsc
// instruction; the ~20-cycle cost of executing it is charged separately
// by profiling layers via Exec, so that the overhead shows up in
// profiles exactly as in the paper (§5.2).
//
// A negative skew larger than the early-run clock would wrap the
// unsigned counter to ~2^64; real counters start at zero, so the read
// clamps there instead.
func (p *Proc) ReadTSC() uint64 {
	c := p.k.cpus[p.lastCPU]
	t := int64(p.k.now) + c.skew
	if t < 0 {
		return 0
	}
	return uint64(t)
}

// TSCDelta returns end-start, clamped at zero. Per-CPU counters are
// not synchronized (§3.4): a process that migrates CPUs between the
// two reads can observe end < start, and a raw unsigned subtraction
// would turn that into a ~2^64 top-bucket garbage sample. Every
// profiler pairing two ReadTSC values must subtract through this
// helper.
func TSCDelta(end, start uint64) uint64 {
	if end < start {
		return 0
	}
	return end - start
}

// Now returns the unskewed global clock. Prefer ReadTSC in profilers.
func (p *Proc) Now() uint64 { return p.k.now }

// Exec consumes n cycles of kernel-mode CPU time. The call returns when
// the work completes; the wall-clock time that elapses may exceed n due
// to run-queue waits, context switches, timer interrupts and (on
// preemptive kernels) forcible preemption.
func (p *Proc) Exec(n uint64) { p.exec(n, false) }

// ExecUser consumes n cycles of user-mode CPU time. User-mode execution
// is preemptible on every kernel build.
func (p *Proc) ExecUser(n uint64) { p.exec(n, true) }

func (p *Proc) exec(n uint64, user bool) {
	if p.cpu == nil {
		// Defensive: the process somehow lost its CPU; queue for one.
		p.execRemaining = n
		p.execUser = user
		p.state = stateNew
		p.k.makeRunnable(p)
		p.k.dispatchLater()
		p.yieldToKernel()
		return
	}
	k := p.k
	if p.sliceEvent == nil && (k.runq.Len() == 0 || k.idleCPU() == nil) {
		// Inline-completion fast path: if this slice would finish
		// strictly before the earliest pending event, nothing — no
		// timer tick, no wakeup, no completion — can run during it, so
		// no preemption or interrupt is possible and no other process
		// can touch the run queue. Advance the clock and account the
		// work right here, skipping both the event-heap push and the
		// resume/yield channel round-trip through the kernel loop.
		// (Strictly before: at equal times the pending event has the
		// smaller sequence number and would fire first.)
		//
		// The run-queue guard keeps the skipped kernel-loop pass
		// equivalent to a no-op: if this process's own actions (e.g. an
		// Up that woke a sleeper whose wakeup preemption freed a CPU)
		// left a runnable process and an idle CPU behind, the slow path
		// would dispatch it on the next yield, so the slice must take
		// that path.
		finish := k.now + p.overhead + n
		if when, ok := k.peekTime(); !ok || finish < when {
			k.now = finish
			p.sliceStart = finish
			p.overhead = 0
			p.execRemaining = 0
			p.execUser = user
			if user {
				p.userCPU += n
			} else {
				p.sysCPU += n
			}
			return
		}
	}
	p.execRemaining = n
	p.execUser = user
	if p.sliceEvent != nil {
		p.k.cancelEvent(p.sliceEvent)
	}
	p.k.startSlice(p)
	p.yieldToKernel()
}

// Sleep blocks the process for n cycles of wall time without consuming
// CPU (e.g., a daemon's periodic timer).
func (p *Proc) Sleep(n uint64) {
	k := p.k
	p.beginBlock("sleep")
	k.schedule(k.now+n, p.wakeFn)
	p.yieldToKernel()
}

// Block parks the process until another component calls Kernel.Wake.
// reason is reported in deadlock dumps.
func (p *Proc) Block(reason string) {
	p.beginBlock(reason)
	p.yieldToKernel()
}

// beginBlock releases the CPU and marks the process blocked.
func (p *Proc) beginBlock(reason string) {
	k := p.k
	if p.sliceEvent != nil {
		k.cancelEvent(p.sliceEvent)
		p.sliceEvent = nil
	}
	k.releaseCPU(p)
	p.state = stateBlocked
	p.blockedAt = k.now
	p.blockReason = reason
}

// YieldCPU voluntarily gives up the CPU, going to the back of the run
// queue (sched_yield).
func (p *Proc) YieldCPU() {
	k := p.k
	if p.sliceEvent != nil {
		k.cancelEvent(p.sliceEvent)
		p.sliceEvent = nil
	}
	k.releaseCPU(p)
	p.state = stateNew // force requeue in makeRunnable
	k.makeRunnable(p)
	k.dispatchLater()
	p.yieldToKernel()
}

// WaitFor blocks until other has finished.
func (p *Proc) WaitFor(other *Proc) {
	if other.state == stateFinished {
		return
	}
	other.waiters = append(other.waiters, p)
	p.beginBlock("waitfor:" + other.name)
	p.yieldToKernel()
}

// noop is the shared empty callback for dispatchLater; the kernel loop
// runs a dispatch pass after every event, so the event needs no body.
func noop() {}

// dispatchLater schedules an immediate dispatch pass. Used by
// primitives that change the run queue from process context: the
// dispatch must happen from the kernel loop, after the process yields.
func (k *Kernel) dispatchLater() {
	k.schedule(k.now, noop)
}
