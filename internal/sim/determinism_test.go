package sim_test

// Determinism regression test: the simulator must produce bit-identical
// results for a fixed seed, run after run, and those results must not
// drift as the engine is optimized. The golden values below were
// captured from the straightforward pre-optimization implementation
// (heap-allocated events, closure-per-slice, copy-shift run queue, a
// channel round-trip per Exec); any fast path that changes them has
// changed simulation semantics, not just speed.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"osprof/internal/core"
	"osprof/internal/sim"
)

// determinismWorkload exercises every scheduler feature at once: two
// CPUs with skewed TSCs, in-kernel preemption, timer ticks, wakeup
// preemption, semaphore and spinlock contention, sleeps, user- and
// kernel-mode execution, a daemon, and kernel-driven async completions.
func determinismWorkload() (*core.Set, sim.Stats) {
	k := sim.New(sim.Config{
		NumCPUs:     2,
		Quantum:     1 << 18,
		Preemptive:  true,
		TickPeriod:  1 << 16,
		TickCost:    5_000,
		WakePreempt: true,
		TSCSkew:     []int64{250, -250},
		Seed:        0xD5EED,
	})
	set := core.NewSet("determinism")
	mu := sim.NewSemaphore(k, "inode")
	spin := sim.NewSpinLock(k, "runq")
	wq := sim.NewWaitQueue(k, "io")

	k.SpawnDaemon("flusher", func(p *sim.Proc) {
		for {
			p.Sleep(1 << 15)
			p.Exec(2_000)
			wq.WakeAll()
		}
	})

	for w := 0; w < 3; w++ {
		// Only two of the three workers take the spinlock: with as many
		// spinlock users as CPUs plus one, a preempted holder could be
		// starved forever by spinners occupying every CPU (real kernels
		// disable preemption inside spinlock sections; this simulator
		// does not).
		useSpin := w < 2
		k.Spawn("worker", func(p *sim.Proc) {
			rng := k.Rand()
			for i := 0; i < 400; i++ {
				start := p.ReadTSC()
				mu.Down(p)
				p.Exec(uint64(rng.Int63n(4_000)) + 500)
				mu.Up(p)
				set.Record("sem_op", p.ReadTSC()-start)

				if useSpin {
					start = p.ReadTSC()
					spin.Lock(p)
					p.Exec(uint64(rng.Int63n(300)) + 50)
					spin.Unlock(p)
					set.Record("spin_op", p.ReadTSC()-start)
				}

				start = p.ReadTSC()
				p.ExecUser(uint64(rng.Int63n(20_000)) + 1_000)
				set.Record("user_op", p.ReadTSC()-start)

				if i%16 == 0 {
					start = p.ReadTSC()
					k.Schedule(uint64(rng.Int63n(8_000))+1_000, func() { wq.WakeOne() })
					wq.Wait(p)
					set.Record("io_op", p.ReadTSC()-start)
				}
				if i%32 == 0 {
					p.YieldCPU()
				}
			}
		})
	}
	k.Run()
	return set, k.Stats()
}

// Goldens captured from the pre-refactor simulator (seed 0xD5EED).
const (
	goldenSetSHA256    = "bbe787f6685d30384de6901281838e93d593ab08d6796758368af3dcc22b5a5f"
	goldenCtxSwitches  = 1303
	goldenPreemptions  = 597
	goldenTimerTicks   = 242
	goldenTotalOps     = 3275
	goldenTotalLatency = 44899215
)

func marshalSet(t *testing.T, s *core.Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.WriteSet(&buf, s); err != nil {
		t.Fatalf("WriteSet: %v", err)
	}
	return buf.Bytes()
}

func TestDeterminismSameSeedIdenticalRuns(t *testing.T) {
	set1, stats1 := determinismWorkload()
	set2, stats2 := determinismWorkload()

	if stats1 != stats2 {
		t.Errorf("Stats differ across identical runs:\n  run1 %+v\n  run2 %+v", stats1, stats2)
	}
	b1, b2 := marshalSet(t, set1), marshalSet(t, set2)
	if !bytes.Equal(b1, b2) {
		t.Errorf("marshaled profiles differ across identical runs:\n%s\n---\n%s", b1, b2)
	}
	if err := set1.Validate(); err != nil {
		t.Errorf("profile checksum: %v", err)
	}
}

func TestDeterminismMatchesPreRefactorGolden(t *testing.T) {
	set, stats := determinismWorkload()

	if got := stats.ContextSwitches; got != goldenCtxSwitches {
		t.Errorf("ContextSwitches = %d, golden %d", got, goldenCtxSwitches)
	}
	if got := stats.Preemptions; got != goldenPreemptions {
		t.Errorf("Preemptions = %d, golden %d", got, goldenPreemptions)
	}
	if got := stats.TimerTicks; got != goldenTimerTicks {
		t.Errorf("TimerTicks = %d, golden %d", got, goldenTimerTicks)
	}
	if got := set.TotalOps(); got != goldenTotalOps {
		t.Errorf("TotalOps = %d, golden %d", got, goldenTotalOps)
	}
	if got := set.TotalLatency(); got != goldenTotalLatency {
		t.Errorf("TotalLatency = %d, golden %d", got, goldenTotalLatency)
	}
	sum := sha256.Sum256(marshalSet(t, set))
	if got := hex.EncodeToString(sum[:]); got != goldenSetSHA256 {
		t.Errorf("marshaled set sha256 = %s, golden %s", got, goldenSetSHA256)
	}
}
