package sim

// Run-queue load as a profile dimension (perf-load's insight): a
// latency sample is only interpretable alongside how many processes
// were competing for CPUs when it was taken. The kernel exposes a
// cheap instantaneous load probe (Load) and, when enabled via
// TrackLoad, accounts how many cycles the machine spent in each
// log-spaced load band so analysis can weight per-band histograms by
// observed band occupancy (the -realtime normalization).

// LoadBands is the number of log-spaced run-queue load bands.
const LoadBands = 3

// loadBandNames are the band display names, in band order. They are
// part of the op-naming contract (`read@load:2-4`), so they must never
// change for archived runs to stay comparable.
var loadBandNames = [LoadBands]string{"1", "2-4", "5+"}

// LoadBand maps an instantaneous load to its log-spaced band index:
// band 0 covers load <=1 (the sampling process alone), band 1 covers
// 2-4, band 2 covers 5 and above.
func LoadBand(n int) int {
	switch {
	case n <= 1:
		return 0
	case n <= 4:
		return 1
	default:
		return 2
	}
}

// LoadBandName returns a band's display name ("1", "2-4", "5+").
func LoadBandName(band int) string { return loadBandNames[band] }

// LoadBandNames returns the band names in band order.
func LoadBandNames() []string { return loadBandNames[:] }

// Load returns the instantaneous run-queue load: processes running or
// spinning on a CPU plus processes waiting on the run queue. It is a
// pure observation — O(NumCPUs), no events, no simulated cost — so
// profilers may sample it without perturbing the simulation.
func (k *Kernel) Load() int {
	if k.loadTrack {
		// The occupancy accounting already maintains the load
		// incrementally (the only transitions that change it call
		// noteLoad), so conditioned profilers sampling on every
		// operation get a field read instead of the scan.
		return k.loadCur
	}
	n := k.runq.Len()
	for _, c := range k.cpus {
		if c.p != nil {
			n++
		}
	}
	return n
}

// TrackLoad enables load-occupancy accounting: from this call on the
// kernel attributes every elapsed cycle to the load band the machine
// was in. Disabled by default so untracked simulations pay only a
// bool check on the scheduling paths.
func (k *Kernel) TrackLoad() {
	if k.loadTrack {
		return
	}
	k.loadTrack = true
	k.loadCur = k.Load()
	k.loadLast = k.now
}

// noteLoad accrues the cycles spent at the current load band and then
// applies delta. It is called from the only two scheduler transitions
// that change the total load — makeRunnable (+1) and releaseCPU (-1);
// assignment, preemption and wakeup preemption move a process between
// the run queue and a CPU without changing the sum.
func (k *Kernel) noteLoad(delta int) {
	if !k.loadTrack {
		return
	}
	k.loadOcc[LoadBand(k.loadCur)] += k.now - k.loadLast
	k.loadLast = k.now
	k.loadCur += delta
}

// LoadTracked reports whether TrackLoad enabled occupancy accounting.
func (k *Kernel) LoadTracked() bool { return k.loadTrack }

// LoadOccupancy returns the cycles spent in each load band since
// TrackLoad, including the still-open interval up to now. All zeros
// when tracking was never enabled.
func (k *Kernel) LoadOccupancy() [LoadBands]uint64 {
	occ := k.loadOcc
	if k.loadTrack {
		occ[LoadBand(k.loadCur)] += k.now - k.loadLast
	}
	return occ
}
