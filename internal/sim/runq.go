package sim

// procRing is the run queue: a FIFO of runnable processes backed by a
// power-of-two ring buffer. The previous implementation was a plain
// slice whose every pop copy-shifted the remaining elements; the ring
// makes push/pop O(1) without allocating, and moveToFront (the wakeup
// sleeper boost) shifts only the logical prefix it hoists over.
type procRing struct {
	buf  []*Proc
	head int // index of the logical front
	n    int // number of queued processes
}

// Len reports the number of queued processes.
func (r *procRing) Len() int { return r.n }

// At returns the i-th process from the front (0 <= i < Len).
func (r *procRing) At(i int) *Proc {
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// grow doubles the ring, re-linearizing the contents at index 0.
func (r *procRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]*Proc, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.At(i)
	}
	r.buf = buf
	r.head = 0
}

// PushBack appends p at the tail.
func (r *procRing) PushBack(p *Proc) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

// PopFront removes and returns the front process.
func (r *procRing) PopFront() *Proc {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

// MoveToFront hoists p to the head of the queue, preserving the
// relative order of the processes it jumps over. No-op if p is absent.
func (r *procRing) MoveToFront(p *Proc) {
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		if r.At(i) != p {
			continue
		}
		for j := i; j > 0; j-- {
			r.buf[(r.head+j)&mask] = r.buf[(r.head+j-1)&mask]
		}
		r.buf[r.head] = p
		return
	}
}
