package sim

import "container/heap"

// event is a scheduled callback in the discrete-event simulation.
// Events are ordered by (when, seq); seq provides a deterministic
// tie-break for events scheduled at the same instant.
type event struct {
	when     uint64
	seq      uint64
	fn       func()
	canceled bool
	index    int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// schedule registers fn to run at absolute time when (in cycles).
// The returned event may be canceled with cancelEvent.
func (k *Kernel) schedule(when uint64, fn func()) *event {
	if when < k.now {
		when = k.now
	}
	k.seq++
	ev := &event{when: when, seq: k.seq, fn: fn}
	heap.Push(&k.events, ev)
	return ev
}

// cancelEvent marks an event so it will be skipped when popped.
func (k *Kernel) cancelEvent(ev *event) {
	if ev != nil {
		ev.canceled = true
	}
}

// popEvent removes and returns the earliest non-canceled event, or nil.
func (k *Kernel) popEvent() *event {
	for k.events.Len() > 0 {
		ev := heap.Pop(&k.events).(*event)
		if !ev.canceled {
			return ev
		}
	}
	return nil
}

// peekTime reports the time of the earliest pending event.
func (k *Kernel) peekTime() (uint64, bool) {
	for k.events.Len() > 0 {
		if k.events[0].canceled {
			heap.Pop(&k.events)
			continue
		}
		return k.events[0].when, true
	}
	return 0, false
}
