package sim

// event is a scheduled callback in the discrete-event simulation.
// Events are ordered by (when, seq); seq provides a deterministic
// tie-break for events scheduled at the same instant.
//
// Events are pooled on a per-kernel free list: the simulator schedules
// one event per execution slice, so recycling them (together with the
// pre-bound callbacks in Proc) makes the steady-state scheduling path
// allocation-free. An event returns to the pool after its callback runs
// or when it is popped in the canceled state; holders (Proc.sliceEvent,
// Kernel.tickEvent) must clear or reassign their pointer before the
// event fires or is discarded, which every call site does.
type event struct {
	when     uint64
	seq      uint64
	fn       func()
	canceled bool
}

// eventHeap is a binary min-heap ordered by (when, seq). The sift
// routines are hand-rolled rather than using container/heap to avoid
// the interface indirection on the simulator's hottest path.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && h.less(right, left) {
			child = right
		}
		if !h.less(child, i) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() *event {
	old := *h
	n := len(old)
	ev := old[0]
	old[0] = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	h.down(0)
	return ev
}

// newEvent takes an event from the kernel's free list, or allocates one
// when the list is empty (cold start, or deeper nesting than ever seen).
func (k *Kernel) newEvent() *event {
	if n := len(k.freeEvents); n > 0 {
		ev := k.freeEvents[n-1]
		k.freeEvents[n-1] = nil
		k.freeEvents = k.freeEvents[:n-1]
		return ev
	}
	return &event{}
}

// freeEvent recycles a fired or discarded event. The callback reference
// is dropped so the pool does not pin closures.
func (k *Kernel) freeEvent(ev *event) {
	ev.fn = nil
	ev.canceled = false
	k.freeEvents = append(k.freeEvents, ev)
}

// schedule registers fn to run at absolute time when (in cycles).
// The returned event may be canceled with cancelEvent.
func (k *Kernel) schedule(when uint64, fn func()) *event {
	if when < k.now {
		when = k.now
	}
	k.seq++
	ev := k.newEvent()
	ev.when, ev.seq, ev.fn = when, k.seq, fn
	k.events.push(ev)
	return ev
}

// cancelEvent marks an event so it will be skipped (and recycled) when
// popped. The caller must drop its pointer: the event may be reused for
// an unrelated callback as soon as the queue discards it.
func (k *Kernel) cancelEvent(ev *event) {
	if ev != nil {
		ev.canceled = true
	}
}

// popEvent removes and returns the earliest non-canceled event, or nil.
// Canceled events are recycled on the way.
func (k *Kernel) popEvent() *event {
	for k.events.Len() > 0 {
		ev := k.events.pop()
		if !ev.canceled {
			return ev
		}
		k.freeEvent(ev)
	}
	return nil
}

// peekTime reports the time of the earliest pending event.
func (k *Kernel) peekTime() (uint64, bool) {
	for k.events.Len() > 0 {
		if k.events[0].canceled {
			k.freeEvent(k.events.pop())
			continue
		}
		return k.events[0].when, true
	}
	return 0, false
}
