package sim

import "testing"

func TestLoadBandEdges(t *testing.T) {
	cases := []struct {
		load int
		band int
		name string
	}{
		{0, 0, "1"},
		{1, 0, "1"},
		{2, 1, "2-4"},
		{4, 1, "2-4"},
		{5, 2, "5+"},
		{100, 2, "5+"},
	}
	for _, c := range cases {
		if got := LoadBand(c.load); got != c.band {
			t.Errorf("LoadBand(%d) = %d, want %d", c.load, got, c.band)
		}
		if got := LoadBandName(LoadBand(c.load)); got != c.name {
			t.Errorf("LoadBandName(LoadBand(%d)) = %q, want %q", c.load, got, c.name)
		}
	}
	if names := LoadBandNames(); len(names) != LoadBands || names[0] != "1" {
		t.Errorf("LoadBandNames() = %v", names)
	}
}

func TestReadTSCClampsNegativeSkew(t *testing.T) {
	// A large negative skew can exceed the clock early in the run; the
	// raw sum would wrap to ~2^64. ReadTSC must clamp at zero.
	cases := []struct {
		skew int64
		want func(now uint64, skew int64) uint64
	}{
		{-1_000_000, func(uint64, int64) uint64 { return 0 }},
		{-1, func(now uint64, _ int64) uint64 { return now - 1 }},
		{0, func(now uint64, _ int64) uint64 { return now }},
		{37, func(now uint64, _ int64) uint64 { return now + 37 }},
	}
	for _, c := range cases {
		k := New(Config{NumCPUs: 1, ContextSwitch: 10, TSCSkew: []int64{c.skew}})
		var got, want uint64
		k.Spawn("w", func(p *Proc) {
			// The body starts at now = ContextSwitch = 10, so any skew
			// below -10 underflows without the clamp.
			got = p.ReadTSC()
			want = c.want(p.Now(), c.skew)
		})
		k.Run()
		if got != want {
			t.Errorf("skew %d: ReadTSC = %d, want %d", c.skew, got, want)
		}
	}
}

func TestTSCDeltaClampsUnderflow(t *testing.T) {
	cases := []struct{ end, start, want uint64 }{
		{100, 40, 60},
		{40, 40, 0},
		{39, 40, 0}, // cross-CPU migration: end behind start
		{0, ^uint64(0), 0},
	}
	for _, c := range cases {
		if got := TSCDelta(c.end, c.start); got != c.want {
			t.Errorf("TSCDelta(%d, %d) = %d, want %d", c.end, c.start, got, c.want)
		}
	}
}

func TestKernelLoadCountsRunnableAndRunning(t *testing.T) {
	k := New(Config{NumCPUs: 1, ContextSwitch: 100})
	var loads []int
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *Proc) {
			// Each body observes the load while it runs: itself plus
			// every not-yet-finished sibling still queued.
			loads = append(loads, k.Load())
			p.Exec(500)
		})
	}
	k.Run()
	if len(loads) != 3 || loads[0] != 3 || loads[1] != 2 || loads[2] != 1 {
		t.Errorf("observed loads = %v, want [3 2 1]", loads)
	}
	if got := k.Load(); got != 0 {
		t.Errorf("load after Run = %d, want 0", got)
	}
}

func TestLoadOccupancyAccountsAllCycles(t *testing.T) {
	k := New(Config{NumCPUs: 1, ContextSwitch: 100})
	k.TrackLoad()
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *Proc) { p.Exec(1_000) })
	}
	k.Run()
	occ := k.LoadOccupancy()
	var total uint64
	for _, c := range occ {
		total += c
	}
	// Every simulated cycle sits in exactly one band.
	if total != k.Now() {
		t.Errorf("occupancy total = %d, want clock %d (occ %v)", total, k.Now(), occ)
	}
	// With 3 procs on one CPU the run starts in band 2-4 and drains
	// through band 1; band 5+ is never reached.
	if occ[0] == 0 || occ[1] == 0 {
		t.Errorf("bands 1 and 2-4 should both accrue: %v", occ)
	}
	if occ[2] != 0 {
		t.Errorf("band 5+ accrued %d cycles with only 3 procs", occ[2])
	}
}

func TestLoadOccupancyZeroWithoutTracking(t *testing.T) {
	k := New(Config{NumCPUs: 1, ContextSwitch: 100})
	k.Spawn("w", func(p *Proc) { p.Exec(1_000) })
	k.Run()
	if occ := k.LoadOccupancy(); occ != [LoadBands]uint64{} {
		t.Errorf("untracked kernel accrued occupancy: %v", occ)
	}
}

// checkSingleAssignment scans the machine for the dispatch invariant:
// a process occupies at most one CPU, and an occupied CPU's process
// points back at it in a running or spinning state.
func checkSingleAssignment(t *testing.T, k *Kernel) {
	t.Helper()
	seen := make(map[*Proc]int)
	for _, c := range k.cpus {
		p := c.p
		if p == nil {
			continue
		}
		if prev, dup := seen[p]; dup {
			t.Fatalf("proc %q on CPU %d and CPU %d at t=%d", p.Name(), prev, c.idx, k.Now())
		}
		seen[p] = c.idx
		if p.cpu != c {
			t.Fatalf("proc %q on CPU %d does not point back at it (t=%d)", p.Name(), c.idx, k.Now())
		}
		if p.state != stateRunning && p.state != stateSpinning {
			t.Fatalf("proc %q occupies CPU %d in state %d (t=%d)", p.Name(), c.idx, p.state, k.Now())
		}
	}
}

// TestNoProcOnTwoCPUs is the SMP dispatch property test: under a
// preemptive, wake-preempting schedule with sleeps forcing migrations,
// no process is ever assigned to two CPUs at once. The invariant is
// checked from inside every process body step — thousands of distinct
// machine states across the interleaving.
func TestNoProcOnTwoCPUs(t *testing.T) {
	for _, ncpu := range []int{2, 4} {
		k := New(Config{
			NumCPUs:       ncpu,
			ContextSwitch: 100,
			TickPeriod:    3_000,
			TickCost:      50,
			Quantum:       2_000,
			Preemptive:    true,
			WakePreempt:   true,
			Seed:          int64(ncpu),
		})
		for i := 0; i < 4*ncpu; i++ {
			k.Spawn("w", func(p *Proc) {
				for j := 0; j < 40; j++ {
					p.Exec(uint64(k.Rand().Intn(1_500)) + 1)
					checkSingleAssignment(t, k)
					if j%5 == 0 {
						p.Sleep(uint64(k.Rand().Intn(2_000)) + 1)
					}
					if j%7 == 0 {
						p.YieldCPU()
					}
					checkSingleAssignment(t, k)
				}
			})
		}
		k.Run()
	}
}
