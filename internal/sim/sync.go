package sim

// This file implements the kernel synchronization primitives whose
// contention the paper's profiles expose: semaphores (sleeping locks,
// contributing t_sem to wait time) and spinlocks (busy-wait locks,
// contributing t_spinlock to CPU time). Both keep contention statistics
// so experiments can verify that profile peaks correspond to real
// contention events.

// defaultSemOpCost models the CPU cost of one semaphore operation.
// The paper notes (§6.1) that the semaphore function "is called twice
// and its size is comparable to llseek", i.e., on the order of 100
// cycles per call.
const defaultSemOpCost = 100

// defaultSpinOpCost models an uncontended spinlock acquire/release,
// including the bus-locking memory access (§6.1).
const defaultSpinOpCost = 30

// SemStats reports semaphore usage counters.
type SemStats struct {
	Acquisitions uint64
	Contentions  uint64
	TotalWait    uint64 // cycles spent blocked across all waiters
}

// Semaphore is a sleeping mutual-exclusion lock: contended acquirers
// release their CPU and block, so contention appears as wait time in
// latency profiles (like Linux's i_sem in §6.1).
type Semaphore struct {
	k       *Kernel
	name    string
	holder  *Proc
	waiters []*Proc
	stats   SemStats

	// OpCost is the kernel-mode CPU cost charged for each Down or Up
	// call regardless of contention.
	OpCost uint64
}

// NewSemaphore creates a named semaphore on kernel k.
func NewSemaphore(k *Kernel, name string) *Semaphore {
	return &Semaphore{k: k, name: name, OpCost: defaultSemOpCost}
}

// Stats returns usage counters.
func (s *Semaphore) Stats() SemStats { return s.stats }

// Holder returns the current owner, or nil.
func (s *Semaphore) Holder() *Proc { return s.holder }

// Down acquires the semaphore, blocking if it is held.
func (s *Semaphore) Down(p *Proc) {
	if s.OpCost > 0 {
		p.Exec(s.OpCost)
	}
	s.stats.Acquisitions++
	if s.holder == nil {
		s.holder = p
		return
	}
	s.stats.Contentions++
	start := s.k.now
	s.waiters = append(s.waiters, p)
	p.Block("sem:" + s.name)
	s.stats.TotalWait += s.k.now - start
	// Ownership was transferred to us by Up before the wake.
}

// TryDown acquires the semaphore without blocking; it reports whether
// the acquisition succeeded.
func (s *Semaphore) TryDown(p *Proc) bool {
	if s.OpCost > 0 {
		p.Exec(s.OpCost)
	}
	if s.holder != nil {
		return false
	}
	s.stats.Acquisitions++
	s.holder = p
	return true
}

// Up releases the semaphore, handing it to the first waiter if any.
func (s *Semaphore) Up(p *Proc) {
	if s.OpCost > 0 {
		p.Exec(s.OpCost)
	}
	if len(s.waiters) > 0 {
		next := s.waiters[0]
		copy(s.waiters, s.waiters[1:])
		s.waiters = s.waiters[:len(s.waiters)-1]
		s.holder = next
		s.k.Wake(next)
		return
	}
	s.holder = nil
}

// SpinStats reports spinlock usage counters.
type SpinStats struct {
	Acquisitions uint64
	Contentions  uint64
	TotalSpin    uint64 // CPU cycles burned spinning across all waiters
}

// SpinLock is a busy-wait lock: contended acquirers keep their CPU
// spinning, so contention appears as CPU time (t_spinlock in Eq. 2).
// Critical sections must not block; spinners are never preempted.
type SpinLock struct {
	k        *Kernel
	name     string
	held     bool
	owner    *Proc
	spinners []*Proc
	spinFrom map[*Proc]uint64
	stats    SpinStats

	// OpCost is the CPU cost of an uncontended lock or unlock.
	OpCost uint64
}

// NewSpinLock creates a named spinlock on kernel k.
func NewSpinLock(k *Kernel, name string) *SpinLock {
	return &SpinLock{
		k:        k,
		name:     name,
		spinFrom: make(map[*Proc]uint64),
		OpCost:   defaultSpinOpCost,
	}
}

// Stats returns usage counters.
func (l *SpinLock) Stats() SpinStats { return l.stats }

// Lock acquires the spinlock, spinning (burning CPU on the current
// processor) while it is held by another process.
func (l *SpinLock) Lock(p *Proc) {
	if l.OpCost > 0 {
		p.Exec(l.OpCost)
	}
	l.stats.Acquisitions++
	if !l.held {
		l.held = true
		l.owner = p
		return
	}
	l.stats.Contentions++
	l.spinners = append(l.spinners, p)
	l.spinFrom[p] = l.k.now
	p.state = stateSpinning // CPU stays occupied by the spinner
	p.blockReason = "spin:" + l.name
	p.yieldToKernel()
}

// Unlock releases the spinlock, transferring it to the earliest spinner
// if any. The spinner's busy-wait time is charged as system CPU time.
func (l *SpinLock) Unlock(p *Proc) {
	if l.OpCost > 0 {
		p.Exec(l.OpCost)
	}
	if len(l.spinners) == 0 {
		l.held = false
		l.owner = nil
		return
	}
	next := l.spinners[0]
	copy(l.spinners, l.spinners[1:])
	l.spinners = l.spinners[:len(l.spinners)-1]
	spin := l.k.now - l.spinFrom[next]
	delete(l.spinFrom, next)
	next.sysCPU += spin
	next.spinTime += spin
	l.stats.TotalSpin += spin
	l.owner = next
	next.state = stateRunning
	// The resume must come from the kernel loop, not from p's stack.
	l.k.schedule(l.k.now, next.resumeFn)
}

// WaitQueue is a condition-variable-like wait list used by substrates
// (page locks, request completion) to park and wake processes.
type WaitQueue struct {
	k       *Kernel
	name    string
	waiters []*Proc
}

// NewWaitQueue creates a named wait queue on kernel k.
func NewWaitQueue(k *Kernel, name string) *WaitQueue {
	return &WaitQueue{k: k, name: name}
}

// Wait parks the calling process until WakeOne or WakeAll releases it.
func (w *WaitQueue) Wait(p *Proc) {
	w.waiters = append(w.waiters, p)
	p.Block("waitq:" + w.name)
}

// WakeAll wakes every parked process (in FIFO order).
func (w *WaitQueue) WakeAll() {
	for _, p := range w.waiters {
		w.k.Wake(p)
	}
	w.waiters = w.waiters[:0]
}

// WakeOne wakes the earliest parked process, if any.
func (w *WaitQueue) WakeOne() {
	if len(w.waiters) == 0 {
		return
	}
	p := w.waiters[0]
	copy(w.waiters, w.waiters[1:])
	w.waiters = w.waiters[:len(w.waiters)-1]
	w.k.Wake(p)
}

// Len reports the number of parked processes.
func (w *WaitQueue) Len() int { return len(w.waiters) }
