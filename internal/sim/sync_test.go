package sim

import "testing"

func TestSemaphoreUncontended(t *testing.T) {
	k := New(quiet(1))
	sem := NewSemaphore(k, "s")
	k.Spawn("w", func(p *Proc) {
		sem.Down(p)
		p.Exec(100)
		sem.Up(p)
	})
	k.Run()
	st := sem.Stats()
	if st.Acquisitions != 1 || st.Contentions != 0 {
		t.Errorf("stats = %+v, want 1 acquisition, 0 contentions", st)
	}
}

func TestSemaphoreContentionBlocksAndTransfers(t *testing.T) {
	k := New(quiet(2))
	sem := NewSemaphore(k, "s")
	var holderExit, waiterEnter uint64
	k.Spawn("holder", func(p *Proc) {
		sem.Down(p)
		p.Exec(50_000) // long critical section
		sem.Up(p)
		holderExit = p.Now()
	})
	k.Spawn("waiter", func(p *Proc) {
		p.Exec(1_000) // arrive while holder is inside
		sem.Down(p)
		waiterEnter = p.Now()
		sem.Up(p)
	})
	k.Run()
	if sem.Stats().Contentions != 1 {
		t.Fatalf("contentions = %d, want 1", sem.Stats().Contentions)
	}
	if waiterEnter < 50_000 {
		t.Errorf("waiter entered at %d, before holder's critical section ended", waiterEnter)
	}
	if sem.Stats().TotalWait == 0 {
		t.Error("no wait time recorded despite contention")
	}
	_ = holderExit
}

func TestSemaphoreFIFOHandoff(t *testing.T) {
	k := New(quiet(4))
	sem := NewSemaphore(k, "s")
	var order []string
	names := []string{"a", "b", "c", "d"}
	for i, name := range names {
		i, name := i, name
		k.Spawn(name, func(p *Proc) {
			p.Exec(uint64(1 + i)) // stagger arrivals deterministically
			sem.Down(p)
			p.Exec(10_000)
			order = append(order, name)
			sem.Up(p)
		})
	}
	k.Run()
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i, name := range names {
		if order[i] != name {
			t.Errorf("order = %v, want FIFO %v", order, names)
			break
		}
	}
}

func TestTryDown(t *testing.T) {
	k := New(quiet(2))
	sem := NewSemaphore(k, "s")
	var got bool
	k.Spawn("holder", func(p *Proc) {
		sem.Down(p)
		p.Exec(10_000)
		sem.Up(p)
	})
	k.Spawn("trier", func(p *Proc) {
		p.Exec(1_000)
		got = sem.TryDown(p)
	})
	k.Run()
	if got {
		t.Error("TryDown succeeded while semaphore was held")
	}
}

func TestSpinLockBurnsCPU(t *testing.T) {
	k := New(quiet(2))
	l := NewSpinLock(k, "l")
	var spinnerStats ProcStats
	k.Spawn("holder", func(p *Proc) {
		l.Lock(p)
		p.Exec(20_000)
		l.Unlock(p)
	})
	k.Spawn("spinner", func(p *Proc) {
		p.Exec(1_000)
		l.Lock(p)
		spinnerStats = p.Stats()
		l.Unlock(p)
	})
	k.Run()
	if l.Stats().Contentions != 1 {
		t.Fatalf("contentions = %d, want 1", l.Stats().Contentions)
	}
	// The spinner burned CPU, not wait time, while the holder held the
	// lock: roughly 19k cycles of spinning.
	if spinnerStats.SpinTime < 10_000 {
		t.Errorf("spin time = %d, want >= 10000", spinnerStats.SpinTime)
	}
	if spinnerStats.SpinTime > spinnerStats.SysCPU {
		t.Errorf("spin time %d not included in SysCPU %d",
			spinnerStats.SpinTime, spinnerStats.SysCPU)
	}
}

func TestSpinLockUncontendedIsCheap(t *testing.T) {
	k := New(quiet(1))
	l := NewSpinLock(k, "l")
	var elapsed uint64
	k.Spawn("w", func(p *Proc) {
		start := p.Now()
		l.Lock(p)
		l.Unlock(p)
		elapsed = p.Now() - start
	})
	k.Run()
	if elapsed != 2*defaultSpinOpCost {
		t.Errorf("uncontended lock+unlock = %d cycles, want %d",
			elapsed, 2*defaultSpinOpCost)
	}
	if l.Stats().TotalSpin != 0 {
		t.Errorf("TotalSpin = %d, want 0", l.Stats().TotalSpin)
	}
}

func TestSpinLockHandoffOrder(t *testing.T) {
	k := New(Config{NumCPUs: 3, ContextSwitch: 10})
	l := NewSpinLock(k, "l")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("w", func(p *Proc) {
			p.Exec(uint64(1 + i*5))
			l.Lock(p)
			order = append(order, i)
			p.Exec(5_000)
			l.Unlock(p)
		})
	}
	k.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("acquisition order = %v, want [0 1 2]", order)
	}
}

func TestWaitQueueWakeAll(t *testing.T) {
	k := New(quiet(2))
	wq := NewWaitQueue(k, "page")
	woken := 0
	for i := 0; i < 3; i++ {
		k.Spawn("waiter", func(p *Proc) {
			p.Exec(10)
			wq.Wait(p)
			woken++
		})
	}
	k.Spawn("waker", func(p *Proc) {
		p.Exec(10_000)
		wq.WakeAll()
	})
	k.Run()
	if woken != 3 {
		t.Errorf("woken = %d, want 3", woken)
	}
	if wq.Len() != 0 {
		t.Errorf("queue length = %d, want 0", wq.Len())
	}
}

func TestWaitQueueWakeOne(t *testing.T) {
	k := New(quiet(2))
	wq := NewWaitQueue(k, "q")
	var order []int
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("waiter", func(p *Proc) {
			p.Exec(uint64(10 + i))
			wq.Wait(p)
			order = append(order, i)
		})
	}
	k.Spawn("waker", func(p *Proc) {
		p.Exec(5_000)
		wq.WakeOne()
		p.Exec(5_000)
		wq.WakeOne()
	})
	k.Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Errorf("wake order = %v, want [0 1]", order)
	}
}

// TestSemaphoreContentionLatencyScale verifies the latency structure the
// paper relies on in §6.1: a contended semaphore acquisition costs the
// remaining critical section plus scheduling, which is orders of
// magnitude more than the uncontended operation cost.
func TestSemaphoreContentionLatencyScale(t *testing.T) {
	k := New(Config{NumCPUs: 2, ContextSwitch: 9_350})
	sem := NewSemaphore(k, "i_sem")
	var uncontended, contended uint64
	k.Spawn("holder", func(p *Proc) {
		start := p.Now()
		sem.Down(p)
		uncontended = p.Now() - start
		p.Exec(100_000)
		sem.Up(p)
	})
	k.Spawn("waiter", func(p *Proc) {
		p.Exec(20_000)
		start := p.Now()
		sem.Down(p)
		contended = p.Now() - start
		sem.Up(p)
	})
	k.Run()
	if contended < 10*uncontended {
		t.Errorf("contended acquisition (%d) not much slower than uncontended (%d)",
			contended, uncontended)
	}
}
