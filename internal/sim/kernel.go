// Package sim implements a deterministic discrete-event simulation of an
// operating system kernel: CPUs, a run queue with quantum-based
// scheduling, optional in-kernel preemption, timer interrupts, context
// switches, spinlocks and semaphores.
//
// The simulator exists so that the OSprof profiling method (the paper's
// contribution, implemented in internal/core and internal/analysis) can
// be exercised against workloads whose latency composition
//
//	latency = t_cpu + t_wait                       (paper Eq. 1)
//	t_cpu   = sum t_exec + sum t_spinlock
//	t_wait  = sum t_io + sum t_sem + sum t_int + sum t_preempt
//
// is known by construction, letting tests verify that profiles attribute
// latency to the right internal activity.
//
// Simulated processes are goroutines, but the simulation is strictly
// sequential: the kernel resumes exactly one process at a time and waits
// for it to yield back before processing the next event, so results are
// fully deterministic for a given seed.
package sim

import (
	"fmt"
	"math/rand"
	"strings"

	"osprof/internal/cycles"
)

// Config describes a simulated machine and kernel build.
type Config struct {
	// NumCPUs is the number of CPUs (default 1).
	NumCPUs int

	// Quantum is the scheduling time slice in cycles
	// (default cycles.SchedulingQuantum = 2^26).
	Quantum uint64

	// Preemptive selects a kernel built with in-kernel preemption
	// (CONFIG_PREEMPT). Non-preemptive kernels (Linux 2.4, FreeBSD 5.2)
	// never preempt a process while it executes in kernel mode; both
	// kinds preempt user-mode execution when the quantum expires.
	Preemptive bool

	// ContextSwitch is the context-switch cost in cycles
	// (default cycles.ContextSwitch).
	ContextSwitch uint64

	// TickPeriod is the timer-interrupt period in cycles; 0 disables
	// the timer (default cycles.TimerTick).
	TickPeriod uint64

	// TickCost is the CPU time stolen by one timer-interrupt handler
	// invocation from whatever process is running (default 10,000).
	TickCost uint64

	// WakePreempt enables wakeup preemption: a process made runnable
	// by Wake immediately preempts the longest-running preemptible
	// process when no CPU is idle, as interactive schedulers do for
	// priority-boosted sleepers. Kernel-mode execution is still only
	// preemptible when Preemptive is set.
	WakePreempt bool

	// TSCSkew gives per-CPU offsets added to the cycle counter read by
	// ReadTSC, modeling unsynchronized TSCs on SMP systems (§3.4).
	TSCSkew []int64

	// Seed seeds the kernel's deterministic random source.
	Seed int64
}

func (c *Config) applyDefaults() {
	if c.NumCPUs <= 0 {
		c.NumCPUs = 1
	}
	if c.Quantum == 0 {
		c.Quantum = cycles.SchedulingQuantum
	}
	if c.ContextSwitch == 0 {
		c.ContextSwitch = cycles.ContextSwitch
	}
	if c.TickCost == 0 {
		c.TickCost = 10_000
	}
}

// Stats aggregates kernel-wide scheduling statistics.
type Stats struct {
	ContextSwitches uint64
	Preemptions     uint64
	TimerTicks      uint64
}

// Kernel is the simulated machine: clock, event queue, CPUs, run queue.
type Kernel struct {
	cfg    Config
	now    uint64
	seq    uint64
	events eventHeap
	cpus   []*cpu
	runq   procRing
	procs  []*Proc
	live   int // non-daemon processes not yet finished
	rng    *rand.Rand
	stats  Stats

	// freeEvents is the event pool; see event.go.
	freeEvents []*event

	// tickFn is the timer-interrupt callback, bound once so the
	// periodic reschedule does not allocate a method value per tick.
	tickFn func()

	tickEvent *event
	stopped   bool

	// Load-occupancy accounting (see load.go). loadCur mirrors Load()
	// incrementally so the tracking hot path never scans the CPUs.
	loadTrack bool
	loadCur   int
	loadLast  uint64
	loadOcc   [LoadBands]uint64
}

// cpu models one processor. A CPU is occupied while a process runs or
// spins on it; context-switch overhead is charged when a process is
// placed on a CPU.
type cpu struct {
	idx  int
	p    *Proc // currently running (or spinning) process
	skew int64
}

// New creates a simulated machine from cfg.
func New(cfg Config) *Kernel {
	cfg.applyDefaults()
	k := &Kernel{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := 0; i < cfg.NumCPUs; i++ {
		c := &cpu{idx: i}
		if i < len(cfg.TSCSkew) {
			c.skew = cfg.TSCSkew[i]
		}
		k.cpus = append(k.cpus, c)
	}
	k.tickFn = k.timerTick
	if cfg.TickPeriod > 0 {
		k.tickEvent = k.schedule(cfg.TickPeriod, k.tickFn)
	}
	return k
}

// Now returns the global simulation clock in cycles. Profiling code
// should use Proc.ReadTSC instead, which includes per-CPU skew.
func (k *Kernel) Now() uint64 { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Stats returns kernel-wide scheduling statistics.
func (k *Kernel) Stats() Stats { return k.stats }

// NumCPUs reports the number of simulated processors.
func (k *Kernel) NumCPUs() int { return len(k.cpus) }

// Config returns the kernel configuration (after defaults were applied).
func (k *Kernel) Config() Config { return k.cfg }

// Schedule registers fn to run at now+delay cycles. It is used by
// substrates (disk, network, daemons) to model asynchronous completion.
func (k *Kernel) Schedule(delay uint64, fn func()) { k.schedule(k.now+delay, fn) }

// Spawn creates a process executing fn and makes it runnable now.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, fn, false)
}

// SpawnDaemon creates a background process (e.g., a buffer-flushing
// daemon). Daemons do not keep the simulation alive: Run returns when
// all non-daemon processes have finished.
func (k *Kernel) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, fn, true)
}

func (k *Kernel) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	p := &Proc{
		k:      k,
		id:     len(k.procs),
		name:   name,
		daemon: daemon,
		state:  stateNew,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	// Pre-bound callbacks: the slice-completion, wakeup and resume
	// closures are created once per process, so scheduling them on the
	// hot path (startSlice, Sleep, SpinLock.Unlock) never allocates.
	p.sliceDoneFn = func() { k.sliceDone(p) }
	p.wakeFn = func() { k.Wake(p) }
	p.resumeFn = func() { k.resumeProc(p) }
	k.procs = append(k.procs, p)
	if !daemon {
		k.live++
	}
	go p.top(fn)
	k.makeRunnable(p)
	return p
}

// Run processes events until every non-daemon process has finished.
// It panics with a state dump if the simulation deadlocks (live
// processes remain but nothing is runnable and no event is pending).
func (k *Kernel) Run() {
	k.dispatch()
	for k.live > 0 {
		ev := k.popEvent()
		if ev == nil {
			panic("sim: deadlock\n" + k.dump())
		}
		if ev.when > k.now {
			k.now = ev.when
		}
		ev.fn()
		// Safe to recycle: by convention every holder of a pending
		// event pointer (sliceEvent, tickEvent) clears or reassigns it
		// inside the callback, before it returns here.
		k.freeEvent(ev)
		k.dispatch()
	}
	k.stopped = true
}

// dump renders process states for deadlock diagnostics.
func (k *Kernel) dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%d live=%d runq=%d events=%d\n",
		k.now, k.live, k.runq.Len(), k.events.Len())
	for _, p := range k.procs {
		fmt.Fprintf(&b, "  proc %d %q state=%v daemon=%v block=%q\n",
			p.id, p.name, p.state, p.daemon, p.blockReason)
	}
	return b.String()
}

// makeRunnable places p at the tail of the run queue.
func (k *Kernel) makeRunnable(p *Proc) {
	if p.state == stateRunnable || p.state == stateRunning {
		return
	}
	p.state = stateRunnable
	p.runnableAt = k.now
	k.noteLoad(+1)
	k.runq.PushBack(p)
}

// dispatch assigns runnable processes to idle CPUs in FIFO order.
func (k *Kernel) dispatch() {
	for k.runq.Len() > 0 {
		c := k.idleCPU()
		if c == nil {
			return
		}
		k.assign(c, k.runq.PopFront())
	}
}

func (k *Kernel) idleCPU() *cpu {
	for _, c := range k.cpus {
		if c.p == nil {
			return c
		}
	}
	return nil
}

// assign puts p on CPU c, charging context-switch overhead, and starts
// (or restarts) p's pending execution slice.
func (k *Kernel) assign(c *cpu, p *Proc) {
	c.p = p
	p.cpu = c
	p.lastCPU = c.idx
	p.state = stateRunning
	p.cpuAcquired = k.now
	p.waitRunnable += k.now - p.runnableAt
	p.contextSwitches++
	k.stats.ContextSwitches++
	p.overhead += k.cfg.ContextSwitch
	k.startSlice(p)
}

// startSlice schedules the completion of p's pending work (context
// switch overhead plus remaining exec cycles) on its current CPU. The
// event can be displaced by timer ticks and preemption. The callback is
// the process's pre-bound sliceDoneFn and the event comes from the
// kernel pool, so steady-state slices allocate nothing.
func (k *Kernel) startSlice(p *Proc) {
	p.sliceStart = k.now
	work := p.overhead + p.execRemaining
	p.sliceEvent = k.schedule(k.now+work, p.sliceDoneFn)
}

// consumeSlice accounts for the work p performed between sliceStart and
// now, draining overhead first, then exec work.
func (k *Kernel) consumeSlice(p *Proc) {
	done := k.now - p.sliceStart
	p.sliceStart = k.now
	if done >= p.overhead {
		done -= p.overhead
		p.overhead = 0
	} else {
		p.overhead -= done
		done = 0
	}
	if done >= p.execRemaining {
		p.execRemaining = 0
	} else {
		p.execRemaining -= done
	}
	if p.execUser {
		p.userCPU += done
	} else {
		p.sysCPU += done
	}
}

// sliceDone fires when p's scheduled work completes without interruption.
func (k *Kernel) sliceDone(p *Proc) {
	k.consumeSlice(p)
	p.sliceEvent = nil
	// The process keeps its CPU and continues executing Go code (which
	// takes zero simulated time until the next primitive call).
	k.resumeProc(p)
}

// timerTick models the periodic timer interrupt: each CPU's interrupt
// handler steals TickCost cycles from whatever process is running, and
// the scheduler preempts processes that exhausted their quantum.
func (k *Kernel) timerTick() {
	k.stats.TimerTicks++
	for _, c := range k.cpus {
		p := c.p
		if p == nil || p.state != stateRunning {
			continue
		}
		if p.sliceEvent == nil {
			// Process is on CPU but between primitives (zero-time
			// Go code); the handler cost is charged when it next
			// executes. Rare; skip for simplicity.
			continue
		}
		k.consumeSlice(p)
		p.overhead += k.cfg.TickCost
		p.interruptTime += k.cfg.TickCost
		k.cancelEvent(p.sliceEvent)
		if k.shouldPreempt(p) {
			k.preempt(p)
			continue
		}
		k.startSlice(p)
	}
	k.tickEvent = k.schedule(k.now+k.cfg.TickPeriod, k.tickFn)
}

// shouldPreempt reports whether the quantum of p expired and the kernel
// is allowed to preempt it here. Kernel-mode execution is preemptible
// only on kernels built with in-kernel preemption (§3.3).
func (k *Kernel) shouldPreempt(p *Proc) bool {
	if k.runq.Len() == 0 {
		return false
	}
	if k.now-p.cpuAcquired < k.cfg.Quantum {
		return false
	}
	if !p.execUser && !k.cfg.Preemptive {
		return false
	}
	return true
}

// preempt forces p off its CPU mid-execution; its remaining work resumes
// when the scheduler next assigns it a CPU. The delay adds t_preempt to
// the latency of whatever operation p was executing.
func (k *Kernel) preempt(p *Proc) {
	k.stats.Preemptions++
	p.preemptions++
	c := p.cpu
	c.p = nil
	p.cpu = nil
	p.state = stateRunnable
	p.runnableAt = k.now
	p.wasPreempted = true
	k.runq.PushBack(p)
	p.sliceEvent = nil
}

// releaseCPU detaches p from its CPU (voluntary block or exit).
func (k *Kernel) releaseCPU(p *Proc) {
	if p.cpu != nil {
		k.noteLoad(-1)
		p.cpu.p = nil
		p.cpu = nil
	}
}

// resumeProc hands control to p's goroutine and waits for it to yield.
// This is the only place simulated code runs; the strict handoff keeps
// the simulation single-threaded and deterministic.
func (k *Kernel) resumeProc(p *Proc) {
	p.resume <- struct{}{}
	<-p.yield
	if p.state == stateFinished && p.cleanupPending {
		p.cleanupPending = false
		k.releaseCPU(p)
		if !p.daemon {
			k.live--
		}
		for _, w := range p.waiters {
			k.makeRunnable(w)
		}
		p.waiters = nil
	}
}

// Wake makes a blocked process runnable. It is the completion half of
// Proc.block, used by substrates delivering I/O or message completions.
func (k *Kernel) Wake(p *Proc) {
	if p.state != stateBlocked {
		return
	}
	p.waitBlocked += k.now - p.blockedAt
	k.makeRunnable(p)
	if k.cfg.WakePreempt {
		// Sleeper boost: the woken process goes to the front of the
		// run queue and, if no CPU is idle, evicts a running process.
		// Without the boost a woken lock holder can sit runnable
		// behind ordinary queued processes — a lock convoy.
		k.moveToFront(p)
		k.wakePreempt()
	}
}

// moveToFront hoists p to the head of the run queue.
func (k *Kernel) moveToFront(p *Proc) {
	k.runq.MoveToFront(p)
}

// wakePreempt evicts the longest-running preemptible process when a
// wakeup finds every CPU busy, so sleepers resume promptly (a context
// switch rather than a quantum later).
func (k *Kernel) wakePreempt() {
	if k.idleCPU() != nil {
		return
	}
	var victim *Proc
	for _, c := range k.cpus {
		q := c.p
		if q == nil || q.state != stateRunning || q.sliceEvent == nil {
			continue
		}
		if !q.execUser && !k.cfg.Preemptive {
			continue
		}
		if victim == nil || q.cpuAcquired < victim.cpuAcquired {
			victim = q
		}
	}
	if victim == nil {
		return
	}
	k.consumeSlice(victim)
	k.cancelEvent(victim.sliceEvent)
	k.preempt(victim)
}
