package cycles

import (
	"testing"
	"testing/quick"
)

func TestConversionsRoundTrip(t *testing.T) {
	if got := FromMicroseconds(1); got != 1_700 {
		t.Errorf("FromMicroseconds(1) = %d", got)
	}
	if got := FromMilliseconds(4); got != 6_800_000 {
		t.Errorf("FromMilliseconds(4) = %d", got)
	}
	if got := ToMicroseconds(1_700); got != 1 {
		t.Errorf("ToMicroseconds(1700) = %f", got)
	}
	if got := ToSeconds(PerSecond); got != 1 {
		t.Errorf("ToSeconds(1s) = %f", got)
	}
}

func TestCharacteristicTimes(t *testing.T) {
	// §3.1's characteristic times, sanity-checked in physical units.
	cases := []struct {
		name   string
		c      Cycles
		ms     float64
		within float64
	}{
		{"full-stroke seek", FullStrokeSeek, 8, 0.01},
		{"full rotation", FullRotation, 4, 0.01},
		{"timer tick", TimerTick, 4, 0.01},
		{"delayed ACK", DelayedAck, 200, 0.01},
		{"context switch", ContextSwitch, 0.0055, 0.01},
		{"scheduling quantum", SchedulingQuantum, 39.5, 0.01},
	}
	for _, c := range cases {
		got := ToMilliseconds(c.c)
		if got < c.ms*(1-c.within) || got > c.ms*(1+c.within) {
			t.Errorf("%s = %.4fms, want ~%.4fms", c.name, got, c.ms)
		}
	}
}

func TestFormatUnits(t *testing.T) {
	cases := map[Cycles]string{
		48:            "28ns",
		1_535:         "903ns",
		48_000:        "28us",
		1_573_000:     "925us",
		49_300_000:    "29ms",
		1_610_000_000: "947ms",
		3_400_000_000: "2.0s",
	}
	for c, want := range cases {
		if got := Format(c); got != want {
			t.Errorf("Format(%d) = %q, want %q", c, got, want)
		}
	}
}

func TestNanosecondRoundTripProperty(t *testing.T) {
	f := func(us uint32) bool {
		c := FromMicroseconds(float64(us))
		back := ToMicroseconds(c)
		return back > float64(us)*0.999-1 && back < float64(us)*1.001+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
