// Package cycles defines the simulated time base used throughout the
// repository and the characteristic times of the paper's testbed.
//
// All simulated time is expressed in CPU cycles of a 1.7 GHz Pentium 4,
// the machine used in the paper (OSDI 2006, §5). Using cycles rather
// than nanoseconds matches the paper's choice of the TSC register as the
// time metric: it is the most precise and efficient metric available at
// run time, and the logarithmic buckets of an OSprof profile are defined
// directly over cycle counts.
package cycles

import "fmt"

// Hz is the simulated CPU clock rate: 1.7 GHz, as in the paper's testbed.
const Hz = 1_700_000_000

// Cycles is a duration or instant measured in CPU cycles.
type Cycles = uint64

// Conversion constants. One microsecond is 1700 cycles at 1.7 GHz.
const (
	PerNanosecond  = 1.7
	PerMicrosecond = 1_700
	PerMillisecond = 1_700_000
	PerSecond      = Hz
)

// Characteristic times of the paper's test setup (§3.1, "Prior
// knowledge-based analysis"). Profiles with peaks near these values can
// immediately be attributed to the corresponding OS activity.
const (
	// ContextSwitch is the cost of a context switch (~5.5us).
	ContextSwitch = 9_350

	// FullStrokeSeek is a full-stroke disk head seek (8ms).
	FullStrokeSeek = 8 * PerMillisecond

	// TrackToTrackSeek is the minimum seek (0.3ms).
	TrackToTrackSeek = 510_000

	// FullRotation is one platter revolution of the 15,000 RPM disk (4ms).
	FullRotation = 4 * PerMillisecond

	// NetworkOneWay is the one-way LAN latency between the test
	// machines (~112us).
	NetworkOneWay = 190_400

	// SchedulingQuantum is the scheduler time slice. The paper's
	// Equation 3 analysis uses Q = 2^26 cycles (~39ms at 1.7GHz).
	SchedulingQuantum = 1 << 26

	// TimerTick is the period of the timer interrupt (4ms); the paper
	// identifies a profile peak whose population equals the profiling
	// duration divided by 4ms (§3.3, Figure 3 discussion).
	TimerTick = 4 * PerMillisecond

	// DelayedAck is the TCP delayed-acknowledgment timeout used by most
	// implementations (200ms), the root cause of the CIFS FindFirst
	// pathology in §6.4.
	DelayedAck = 200 * PerMillisecond
)

// FromMicroseconds converts microseconds to cycles.
func FromMicroseconds(us float64) Cycles { return Cycles(us * PerMicrosecond) }

// FromMilliseconds converts milliseconds to cycles.
func FromMilliseconds(ms float64) Cycles { return Cycles(ms * PerMillisecond) }

// FromNanoseconds converts nanoseconds to cycles (rounded down).
func FromNanoseconds(ns float64) Cycles { return Cycles(ns * PerNanosecond) }

// ToNanoseconds converts cycles to nanoseconds.
func ToNanoseconds(c Cycles) float64 { return float64(c) / PerNanosecond }

// ToMicroseconds converts cycles to microseconds.
func ToMicroseconds(c Cycles) float64 { return float64(c) / PerMicrosecond }

// ToMilliseconds converts cycles to milliseconds.
func ToMilliseconds(c Cycles) float64 { return float64(c) / PerMillisecond }

// ToSeconds converts cycles to seconds.
func ToSeconds(c Cycles) float64 { return float64(c) / PerSecond }

// Format renders a cycle count as a human-readable time using the same
// style as the bucket labels above the paper's profile plots
// ("28ns", "903ns", "28us", "925us", "29ms", "947ms").
func Format(c Cycles) string {
	ns := ToNanoseconds(c)
	switch {
	case ns < 1_000:
		return fmt.Sprintf("%.0fns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.0fus", ns/1_000)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.0fms", ns/1_000_000)
	default:
		return fmt.Sprintf("%.1fs", ns/1_000_000_000)
	}
}
