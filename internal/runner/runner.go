// Package runner executes independent experiments concurrently. Every
// experiment builds its own simulated kernel — an isolated
// deterministic world — so a set of experiments is embarrassingly
// parallel: a worker pool runs them across cores while each individual
// simulation stays strictly sequential, and the check verdicts are
// bit-identical to a serial run regardless of the worker count.
package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"osprof/internal/core"
	"osprof/internal/experiments"
)

// Schema versions the JSON shape of RunResult so downstream tooling
// (e.g. `osprof diff --json` pipelines) can rely on it; bump it on any
// breaking change to the serialized fields.
const Schema = "osprof-run-result/v1"

// Job is one experiment to run: New must build and execute the
// experiment from scratch (it is called inside a worker).
type Job struct {
	ID  string
	New func() experiments.Result

	// Fingerprint is the canonical identity of the configuration the
	// job runs (scenario.Spec.Fingerprint); it keys the archived run
	// artifact when Options.Archive is set.
	Fingerprint string
}

// SetProvider is implemented by experiment results whose captured
// profile set can be archived as a run artifact.
type SetProvider interface {
	ProfileSet() *core.Set
}

// MetaProvider optionally supplies deterministic descriptive metadata
// for the archived run envelope (no wall-clock values: archived runs
// of the same deterministic world must be byte-identical).
type MetaProvider interface {
	RunMeta() map[string]string
}

// Archiver persists run envelopes; satisfied by *store.Archive.
type Archiver interface {
	Put(run *core.Run) (id string, created bool, err error)
}

// RunResult is the structured outcome of one job.
type RunResult struct {
	// Schema identifies the serialized shape (the Schema constant).
	Schema string `json:"schema"`

	// ID is the job's identifier.
	ID string `json:"id"`

	// Checks are the experiment's invariant verdicts.
	Checks []experiments.Check `json:"checks"`

	// Failed counts the failed checks.
	Failed int `json:"failed"`

	// Wall is the job's wall-clock time.
	Wall time.Duration `json:"wall_ns"`

	// Report is the paper-style textual output (captured only when
	// Options.CaptureReport is set).
	Report string `json:"report,omitempty"`

	// Panic carries a recovered panic message; a panicked job counts
	// as failed.
	Panic string `json:"panic,omitempty"`

	// Fingerprint and RunID identify the archived run artifact when
	// the runner archived one; Dedup marks a rerun whose bytes matched
	// an already-archived run (the determinism fast path).
	Fingerprint string `json:"fingerprint,omitempty"`
	RunID       string `json:"run_id,omitempty"`
	Dedup       bool   `json:"dedup,omitempty"`

	// ArchiveErr reports a failed archive write; it counts as a
	// failure.
	ArchiveErr string `json:"archive_error,omitempty"`
}

// OK reports whether the job completed with all checks passing.
func (r *RunResult) OK() bool {
	return r.Panic == "" && r.ArchiveErr == "" && r.Failed == 0
}

// Options configures a runner invocation.
type Options struct {
	// Parallel is the worker count; values < 1 mean GOMAXPROCS.
	Parallel int

	// CaptureReport renders each result's Report into the RunResult.
	CaptureReport bool

	// Archive, when set, persists each job's profile set (results
	// implementing SetProvider) as a run envelope keyed by the job's
	// Fingerprint. The archive must be safe for concurrent use.
	Archive Archiver
}

// Run executes the jobs on a worker pool and returns one RunResult per
// job, in job order. Check verdicts do not depend on Parallel: each
// job's simulated world is isolated, so only wall-clock times differ
// between serial and parallel runs.
func Run(jobs []Job, opt Options) []RunResult {
	workers := opt.Parallel
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]RunResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = runOne(jobs[i], opt)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// runOne executes a single job, converting panics into a failed
// RunResult so one broken experiment cannot take down the batch.
func runOne(job Job, opt Options) (rr RunResult) {
	rr.Schema = Schema
	rr.ID = job.ID
	start := time.Now()
	defer func() {
		rr.Wall = time.Since(start)
		if p := recover(); p != nil {
			rr.Panic = fmt.Sprint(p)
			rr.Failed++
		}
	}()
	r := job.New()
	rr.Checks = r.Checks()
	for _, c := range rr.Checks {
		if !c.OK {
			rr.Failed++
		}
	}
	if opt.CaptureReport {
		var buf strings.Builder
		r.Report(&buf)
		rr.Report = buf.String()
	}
	if opt.Archive != nil {
		archive(r, job, &rr, opt.Archive)
	}
	return rr
}

// archive persists the result's profile set as a run envelope.
func archive(r experiments.Result, job Job, rr *RunResult, arch Archiver) {
	sp, ok := r.(SetProvider)
	if !ok {
		return
	}
	set := sp.ProfileSet()
	if set == nil {
		return
	}
	run := &core.Run{Fingerprint: job.Fingerprint, Set: set}
	if mp, ok := r.(MetaProvider); ok {
		run.Meta = mp.RunMeta()
	}
	id, created, err := arch.Put(run)
	if err != nil {
		rr.ArchiveErr = err.Error()
		rr.Failed++
		return
	}
	rr.Fingerprint = job.Fingerprint
	rr.RunID = id
	rr.Dedup = !created
}

// FailedChecks sums the failed checks (and panics) across results.
func FailedChecks(results []RunResult) int {
	total := 0
	for i := range results {
		total += results[i].Failed
	}
	return total
}

// WriteJSON emits the results as an indented JSON array.
func WriteJSON(w io.Writer, results []RunResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
