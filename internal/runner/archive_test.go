package runner

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"osprof/internal/core"
	"osprof/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite golden files")

// The JSON emitted by WriteJSON is a published interface (the Schema
// constant versions it): downstream tooling like `osprof diff --json`
// pipelines parses it, so its shape is pinned by a golden file. Run
// `go test ./internal/runner -run TestWriteJSONGolden -update` after a
// deliberate schema change (and bump Schema).
func TestWriteJSONGolden(t *testing.T) {
	results := []RunResult{
		{
			Schema: Schema,
			ID:     "ext2/grep",
			Checks: []experiments.Check{
				{Name: "profiler recorded operations", OK: true, Detail: "ops=1234 across 6 operations"},
			},
			Wall:        1234567 * time.Nanosecond,
			Fingerprint: "5f31d6b71d74f0a2",
			RunID:       "ffc7eec95c44aa01",
		},
		{
			Schema: Schema,
			ID:     "fig3/preempt",
			Checks: []experiments.Check{
				{Name: "scenario built and ran", OK: false, Detail: "boom"},
			},
			Failed: 1,
			Wall:   7 * time.Millisecond,
			Dedup:  true,
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "runresults.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("WriteJSON shape drifted from the golden; if deliberate, bump Schema and run with -update.\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

func TestRunResultsCarrySchema(t *testing.T) {
	results := Run([]Job{fakeJob("x", true)}, Options{})
	if results[0].Schema != Schema {
		t.Errorf("schema %q, want %q", results[0].Schema, Schema)
	}
}

// setResult is a fake result that exposes a profile set for archiving.
type setResult struct {
	fakeResult
	set  *core.Set
	meta map[string]string
}

func (s *setResult) ProfileSet() *core.Set      { return s.set }
func (s *setResult) RunMeta() map[string]string { return s.meta }

// memArchive is an in-memory Archiver.
type memArchive struct {
	mu   sync.Mutex
	runs map[string]*core.Run
	err  error
}

func (m *memArchive) Put(run *core.Run) (string, bool, error) {
	if m.err != nil {
		return "", false, m.err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := "id-" + run.Name()
	_, existed := m.runs[id]
	if m.runs == nil {
		m.runs = make(map[string]*core.Run)
	}
	m.runs[id] = run
	return id, !existed, nil
}

func setJob(id, fp string) Job {
	return Job{ID: id, Fingerprint: fp, New: func() experiments.Result {
		s := core.NewSet(id)
		s.Record("read", 100)
		return &setResult{
			fakeResult: fakeResult{id: id, checks: []experiments.Check{{Name: "c", OK: true}}},
			set:        s,
			meta:       map[string]string{"scenario": id},
		}
	}}
}

func TestRunArchivesSetProviders(t *testing.T) {
	arch := &memArchive{}
	results := Run([]Job{setJob("s1", "fp1"), fakeJob("plain", true)},
		Options{Archive: arch, Parallel: 2})
	if results[0].RunID != "id-s1" || results[0].Fingerprint != "fp1" || results[0].Dedup {
		t.Errorf("archived result: %+v", results[0])
	}
	if results[1].RunID != "" {
		t.Errorf("non-SetProvider result archived: %+v", results[1])
	}
	run := arch.runs["id-s1"]
	if run == nil || run.Fingerprint != "fp1" || run.Meta["scenario"] != "s1" {
		t.Errorf("archived run: %+v", run)
	}
	// A rerun dedups.
	results = Run([]Job{setJob("s1", "fp1")}, Options{Archive: arch})
	if !results[0].Dedup {
		t.Errorf("rerun not marked dedup: %+v", results[0])
	}
}

func TestRunArchiveErrorFailsJob(t *testing.T) {
	arch := &memArchive{err: errors.New("disk full")}
	results := Run([]Job{setJob("s1", "fp1")}, Options{Archive: arch})
	if results[0].OK() || results[0].Failed != 1 || results[0].ArchiveErr == "" {
		t.Errorf("archive error not surfaced: %+v", results[0])
	}
	if FailedChecks(results) != 1 {
		t.Errorf("FailedChecks = %d", FailedChecks(results))
	}
}

// Without Options.Archive nothing is archived and nothing changes.
func TestNoArchiveNoSideEffects(t *testing.T) {
	results := Run([]Job{setJob("s1", "fp1")}, Options{})
	if results[0].RunID != "" || results[0].Fingerprint != "" {
		t.Errorf("archiving happened without an archive: %+v", results[0])
	}
}
