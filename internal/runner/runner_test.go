package runner

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"sync/atomic"
	"testing"

	"osprof/internal/experiments"
)

// fakeResult is a minimal experiments.Result.
type fakeResult struct {
	id     string
	checks []experiments.Check
}

func (f *fakeResult) ID() string                  { return f.id }
func (f *fakeResult) Checks() []experiments.Check { return f.checks }
func (f *fakeResult) Report(w io.Writer)          { io.WriteString(w, "report:"+f.id+"\n") }

func fakeJob(id string, ok bool) Job {
	return Job{ID: id, New: func() experiments.Result {
		return &fakeResult{id: id, checks: []experiments.Check{
			{Name: "invariant", OK: ok, Detail: "detail-" + id},
		}}
	}}
}

func TestRunPreservesJobOrder(t *testing.T) {
	var jobs []Job
	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, id := range ids {
		jobs = append(jobs, fakeJob(id, true))
	}
	results := Run(jobs, Options{Parallel: 4})
	if len(results) != len(ids) {
		t.Fatalf("got %d results, want %d", len(results), len(ids))
	}
	for i, rr := range results {
		if rr.ID != ids[i] {
			t.Errorf("result %d is %q, want %q", i, rr.ID, ids[i])
		}
		if !rr.OK() {
			t.Errorf("%s not OK: %+v", rr.ID, rr)
		}
	}
}

func TestRunCountsFailures(t *testing.T) {
	results := Run([]Job{fakeJob("good", true), fakeJob("bad", false)}, Options{})
	if FailedChecks(results) != 1 {
		t.Errorf("FailedChecks = %d, want 1", FailedChecks(results))
	}
	if results[1].OK() {
		t.Error("failing job reported OK")
	}
}

func TestRunRecoversPanics(t *testing.T) {
	boom := Job{ID: "boom", New: func() experiments.Result { panic("kernel exploded") }}
	results := Run([]Job{fakeJob("fine", true), boom}, Options{Parallel: 2})
	if results[1].Panic != "kernel exploded" {
		t.Errorf("panic not captured: %+v", results[1])
	}
	if results[1].OK() || FailedChecks(results) == 0 {
		t.Error("panicked job must count as failed")
	}
	if !results[0].OK() {
		t.Error("panic leaked into the healthy job")
	}
}

func TestRunCapturesReports(t *testing.T) {
	results := Run([]Job{fakeJob("r", true)}, Options{CaptureReport: true})
	if results[0].Report != "report:r\n" {
		t.Errorf("report = %q", results[0].Report)
	}
	results = Run([]Job{fakeJob("r", true)}, Options{})
	if results[0].Report != "" {
		t.Error("report captured without CaptureReport")
	}
}

// The concurrency cap must hold: at most Parallel jobs in flight.
func TestRunHonorsParallelLimit(t *testing.T) {
	var inFlight, peak atomic.Int64
	var jobs []Job
	for i := 0; i < 16; i++ {
		jobs = append(jobs, Job{ID: "j", New: func() experiments.Result {
			cur := inFlight.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			defer inFlight.Add(-1)
			return &fakeResult{id: "j"}
		}})
	}
	Run(jobs, Options{Parallel: 3})
	if p := peak.Load(); p > 3 {
		t.Errorf("peak concurrency %d exceeds limit 3", p)
	}
}

// Real experiments: verdicts must be independent of the worker count.
func TestParallelVerdictsMatchSerialOnRealExperiments(t *testing.T) {
	jobs := []Job{
		{ID: "fig7", New: experiments.Registry["fig7"]},
		{ID: "fig8", New: experiments.Registry["fig8"]},
		{ID: "eval-memory", New: experiments.Registry["eval-memory"]},
		{ID: "eval-accuracy", New: experiments.Registry["eval-accuracy"]},
	}
	serial := Run(jobs, Options{Parallel: 1})
	parallel := Run(jobs, Options{Parallel: 4})
	for i := range serial {
		if serial[i].ID != parallel[i].ID ||
			!reflect.DeepEqual(serial[i].Checks, parallel[i].Checks) {
			t.Errorf("%s: verdicts differ between serial and parallel runs", serial[i].ID)
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	results := Run([]Job{fakeJob("x", true), fakeJob("y", false)}, Options{CaptureReport: true})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	var back []RunResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].ID != "x" || back[1].Failed != 1 ||
		back[0].Report == "" || len(back[1].Checks) != 1 {
		t.Errorf("round trip mangled results: %+v", back)
	}
}

func TestRunEmptyJobs(t *testing.T) {
	if got := Run(nil, Options{Parallel: 8}); len(got) != 0 {
		t.Errorf("Run(nil) = %v", got)
	}
}
