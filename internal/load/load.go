// Package load conditions latency profiles on run-queue load, the
// perf-load idea (dvyukov/perf-load): a latency sample is only
// interpretable alongside how many processes were competing for CPUs
// when it was taken. Profilers record each sample twice — once into
// the ordinary per-operation profile and once into a load-keyed
// companion profile under a derived operation name:
//
//	read@load:1     samples taken with the sampling process alone
//	read@load:2-4   samples taken at run-queue load 2-4
//	read@load:5+    samples taken at load 5 and above
//
// The bands are sim.LoadBands; the naming contract mirrors the layer
// tracer's (`read@fs`), so every downstream surface — envelopes,
// archive, diff, summary, serve — carries the load dimension with no
// format change. Weights implements perf-load's -realtime
// normalization: per-band histograms are scaled by the observed band
// occupancy so quantiles read as wall-clock expectations instead of
// per-sample averages.
package load

import (
	"strings"

	"osprof/internal/core"
	"osprof/internal/sim"
)

// prefix is the op-name marker of a load-keyed companion profile.
const prefix = "@load:"

// OpName derives the companion profile name of base at band.
func OpName(base string, band int) string {
	return base + prefix + sim.LoadBandName(band)
}

// BandIndex returns the band index of a band display name, or -1. The
// strictness keeps SplitOp from misreading user-defined operation
// names that merely contain the marker.
func BandIndex(name string) int {
	for b := 0; b < sim.LoadBands; b++ {
		if name == sim.LoadBandName(b) {
			return b
		}
	}
	return -1
}

// BandNames returns the band display names in band order.
func BandNames() []string { return sim.LoadBandNames() }

// SplitOp decomposes a load-keyed operation name: "read@load:2-4"
// yields ("read", "2-4", true). ok is false for every other name,
// including layer-derived ops like "read@fs" — and, symmetrically,
// trace.SplitOp rejects load bands — so the two derived dimensions
// never shadow each other.
func SplitOp(op string) (base, band string, ok bool) {
	i := strings.LastIndex(op, prefix)
	if i < 0 {
		return "", "", false
	}
	band = op[i+len(prefix):]
	if BandIndex(band) < 0 {
		return "", "", false
	}
	return op[:i], band, true
}

// bandProfiles caches one operation's per-band profiles so the
// steady-state record path is allocation-free (the tracer's opHandles
// pattern): names are concatenated and profiles created only the
// first time a (op, band) pair is touched.
type bandProfiles [sim.LoadBands]*core.Profile

// Recorder folds load-keyed samples into a profile set. A nil
// *Recorder is valid and inert so profilers can carry the field
// unconditionally.
type Recorder struct {
	set *core.Set
	ops map[string]*bandProfiles
}

// NewRecorder creates a recorder folding into set.
func NewRecorder(set *core.Set) *Recorder {
	return &Recorder{set: set, ops: make(map[string]*bandProfiles)}
}

// Record sorts one latency sample into op's band profile. Hot paths
// that know their operation up front should pre-resolve a Handle
// instead and skip the per-sample map lookup.
func (r *Recorder) Record(op string, band int, latency uint64) {
	if r == nil {
		return
	}
	h := r.ops[op]
	if h == nil {
		h = &bandProfiles{}
		r.ops[op] = h
	}
	prof := h[band]
	if prof == nil {
		prof = r.set.Get(OpName(op, band))
		h[band] = prof
	}
	prof.Record(latency)
}

// Handle is a pre-resolved per-operation recording handle: the op map
// lookup is paid once at instrumentation time instead of per sample
// (the tracer's opHandles pattern). A nil *Handle is valid and inert.
type Handle struct {
	r     *Recorder
	op    string
	profs *bandProfiles
}

// Handle resolves op's recording handle, creating the band slot table
// on first sight. Returns nil on a nil recorder.
func (r *Recorder) Handle(op string) *Handle {
	if r == nil {
		return nil
	}
	h := r.ops[op]
	if h == nil {
		h = &bandProfiles{}
		r.ops[op] = h
	}
	return &Handle{r: r, op: op, profs: h}
}

// Record sorts one latency sample into the handle's band profile.
func (h *Handle) Record(band int, latency uint64) {
	if h == nil {
		return
	}
	prof := h.profs[band]
	if prof == nil {
		prof = h.r.set.Get(OpName(h.op, band))
		h.profs[band] = prof
	}
	prof.Record(latency)
}

// Weights computes the perf-load realtime weight of each band:
//
//	w_b = (occ_b / total_occ) / (count_b / total_count)
//
// occ is the cycles the machine spent at each band (the kernel's
// LoadOccupancy) and counts the per-band sample counts. Scaling a
// band's histogram counts by w_b re-weights the profile from "per
// sample" to "per cycle of wall-clock at that load", so a band the
// machine lived in but rarely sampled stops being underrepresented.
// Bands with no samples get weight 0.
func Weights(occ, counts [sim.LoadBands]uint64) [sim.LoadBands]float64 {
	var w [sim.LoadBands]float64
	var totOcc, totCnt uint64
	for b := 0; b < sim.LoadBands; b++ {
		totOcc += occ[b]
		totCnt += counts[b]
	}
	if totOcc == 0 || totCnt == 0 {
		return w
	}
	for b := 0; b < sim.LoadBands; b++ {
		if counts[b] == 0 {
			continue
		}
		occShare := float64(occ[b]) / float64(totOcc)
		cntShare := float64(counts[b]) / float64(totCnt)
		w[b] = occShare / cntShare
	}
	return w
}
