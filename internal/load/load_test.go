package load

import (
	"testing"

	"osprof/internal/core"
	"osprof/internal/sim"
)

func TestOpNameSplitOpRoundTrip(t *testing.T) {
	for b := 0; b < sim.LoadBands; b++ {
		name := OpName("read", b)
		base, band, ok := SplitOp(name)
		if !ok || base != "read" || band != sim.LoadBandName(b) {
			t.Errorf("SplitOp(%q) = %q, %q, %v", name, base, band, ok)
		}
	}
}

func TestSplitOpRejectsNonLoadOps(t *testing.T) {
	for _, op := range []string{
		"read",           // plain op
		"read@vfs",       // layer-derived op
		"read@crit:vfs",  // critical-path op
		"read@load:",     // empty band
		"read@load:vfs",  // not a band name
		"read@load:0",    // not a band name
		"@load:1",        // empty base
		"read@load:1@x",  // suffix must be last
		"read@load:2-4 ", // trailing junk
	} {
		base, band, ok := SplitOp(op)
		if op == "@load:1" {
			// An empty base never occurs in practice but must not panic;
			// either verdict is acceptable as long as it's consistent.
			continue
		}
		if ok {
			t.Errorf("SplitOp(%q) accepted: base=%q band=%q", op, base, band)
		}
	}
	// Only the LAST @load: marker counts, so a pathological base
	// containing the marker still round-trips.
	base, band, ok := SplitOp("read@load:1@load:5+")
	if !ok || base != "read@load:1" || band != "5+" {
		t.Errorf("nested marker: base=%q band=%q ok=%v", base, band, ok)
	}
}

func TestBandIndex(t *testing.T) {
	for b := 0; b < sim.LoadBands; b++ {
		if got := BandIndex(sim.LoadBandName(b)); got != b {
			t.Errorf("BandIndex(%q) = %d, want %d", sim.LoadBandName(b), got, b)
		}
	}
	for _, bad := range []string{"", "0", "2", "vfs", "5"} {
		if got := BandIndex(bad); got != -1 {
			t.Errorf("BandIndex(%q) = %d, want -1", bad, got)
		}
	}
}

func TestRecorderRecordsIntoBandProfiles(t *testing.T) {
	set := core.NewSet("t")
	r := NewRecorder(set)
	r.Record("read", 0, 100)
	r.Record("read", 0, 200)
	r.Record("read", 2, 50_000)
	r.Record("write", 1, 900)

	if p := set.Lookup("read@load:1"); p == nil || p.Count != 2 {
		t.Errorf("read@load:1 = %+v", p)
	}
	if p := set.Lookup("read@load:5+"); p == nil || p.Count != 1 {
		t.Errorf("read@load:5+ = %+v", p)
	}
	if p := set.Lookup("write@load:2-4"); p == nil || p.Count != 1 {
		t.Errorf("write@load:2-4 = %+v", p)
	}
	if p := set.Lookup("read@load:2-4"); p != nil {
		t.Errorf("unrecorded band materialized: %+v", p)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record("read", 0, 100) // must not panic
}

// TestRecordAllocationFree pins the hot path: recording into an
// already-seen (op, band) pair must not allocate — the same property
// the probes rely on to stay pure observers. CI gates on this test.
func TestRecordAllocationFree(t *testing.T) {
	set := core.NewSet("t")
	r := NewRecorder(set)
	for b := 0; b < sim.LoadBands; b++ {
		r.Record("read", b, 100) // warm the per-op cache
	}
	avg := testing.AllocsPerRun(1000, func() {
		r.Record("read", 0, 100)
		r.Record("read", 1, 2_000)
		r.Record("read", 2, 50_000)
	})
	if avg != 0 {
		t.Errorf("Record allocates %.1f times per op triple, want 0", avg)
	}
}

// TestHandleRecordAllocationFree pins the pre-bound path the probes
// actually use: once resolved, a Handle must record without hashing
// the op name or allocating. CI gates on this test.
func TestHandleRecordAllocationFree(t *testing.T) {
	set := core.NewSet("t")
	r := NewRecorder(set)
	h := r.Handle("read")
	for b := 0; b < sim.LoadBands; b++ {
		h.Record(b, 100) // warm the band profiles
	}
	avg := testing.AllocsPerRun(1000, func() {
		h.Record(0, 100)
		h.Record(1, 2_000)
		h.Record(2, 50_000)
	})
	if avg != 0 {
		t.Errorf("Handle.Record allocates %.1f times per op triple, want 0", avg)
	}
}

// A handle and direct Record share the same band profiles, and a nil
// recorder hands out a nil, inert handle.
func TestHandleSharesProfiles(t *testing.T) {
	set := core.NewSet("t")
	r := NewRecorder(set)
	r.Record("read", 1, 100)
	h := r.Handle("read")
	h.Record(1, 200)
	if got := set.Get(OpName("read", 1)).Count; got != 2 {
		t.Errorf("band profile count = %d, want 2 (handle split the op)", got)
	}
	var nilR *Recorder
	if nh := nilR.Handle("read"); nh != nil {
		t.Errorf("nil recorder handle = %v, want nil", nh)
	}
	var nilH *Handle
	nilH.Record(0, 100) // must not panic
}

func TestWeights(t *testing.T) {
	// Band 0 holds 90% of the occupancy but only 50% of the samples:
	// its weight must exceed 1; band 2 (10% occ, 50% samples) must be
	// under-weighted symmetrically.
	occ := [sim.LoadBands]uint64{900, 0, 100}
	counts := [sim.LoadBands]uint64{500, 0, 500}
	w := Weights(occ, counts)
	if w[0] != 1.8 {
		t.Errorf("w[0] = %v, want 1.8", w[0])
	}
	if w[1] != 0 {
		t.Errorf("w[1] = %v, want 0 (no samples)", w[1])
	}
	if w[2] != 0.2 {
		t.Errorf("w[2] = %v, want 0.2", w[2])
	}

	// Degenerate inputs produce zeros, not NaN.
	for _, c := range []struct{ occ, cnt [sim.LoadBands]uint64 }{
		{[sim.LoadBands]uint64{}, counts},
		{occ, [sim.LoadBands]uint64{}},
	} {
		for b, v := range Weights(c.occ, c.cnt) {
			if v != 0 {
				t.Errorf("degenerate Weights band %d = %v, want 0", b, v)
			}
		}
	}
}
