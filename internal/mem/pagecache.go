// Package mem implements the OS page cache and the buffer-flushing
// daemon. The page cache creates the "cached" peaks of the paper's
// profiles (Figure 7's second peak); the flusher daemon (Linux bdflush,
// §6.3) writes dirty buffers back after a fixed age — thirty seconds
// for data and five seconds for metadata — creating the periodic
// behavior the paper visualizes with sampled profiles (Figure 9).
package mem

import (
	"osprof/internal/cycles"
	"osprof/internal/sim"
	"osprof/internal/trace"
)

// Key identifies one page: an inode and a page index within it.
type Key struct {
	Ino   uint64
	Index uint64
}

// Page is one page-cache entry.
type Page struct {
	Key Key

	// Uptodate marks the page contents valid.
	Uptodate bool

	// Dirty marks the page as modified and not yet written back.
	Dirty bool

	// IO marks an in-flight read or write for this page.
	IO bool

	// DirtiedAt records when the page became dirty (for age-based
	// writeback).
	DirtiedAt uint64

	wq *sim.WaitQueue
	tr *trace.Tracer // inherited from the owning Cache; nil = untraced
}

// WaitUptodate blocks until the page contents become valid. Processes
// that find a page under I/O park here, which is how a readdir or read
// operation's latency absorbs the disk time while the readpage
// operation itself only pays the cost of starting the I/O (§6.2).
//
// The wait — and only the wait — is a page-cache layer span: a page
// already uptodate costs nothing and records nothing, while a miss
// attributes the block to the page cache, with the underlying I/O's
// queue and service time carved back out into the driver and disk
// layers by the request's completion token (trace.Token).
func (pg *Page) WaitUptodate(p *sim.Proc) {
	if pg.Uptodate {
		return
	}
	pg.tr.Enter(p, trace.LayerPageCache)
	for !pg.Uptodate {
		pg.wq.Wait(p)
	}
	pg.tr.Exit(p, trace.LayerPageCache)
}

// Stats aggregates cache activity.
type Stats struct {
	Hits, Misses uint64
	Evictions    uint64

	// ForcedEvictions counts pages dropped by EvictClean (the
	// fault-injection thrash path), also included in Evictions.
	ForcedEvictions uint64
}

// Cache is a page cache with FIFO eviction of clean pages.
type Cache struct {
	k        *sim.Kernel
	pages    map[Key]*Page
	order    []Key
	capacity int
	stats    Stats
	tr       *trace.Tracer
}

// NewCache creates a page cache holding up to capacity pages
// (0 means effectively unbounded).
func NewCache(k *sim.Kernel, capacity int) *Cache {
	return &Cache{k: k, pages: make(map[Key]*Page), capacity: capacity}
}

// SetTracer installs the layer tracer new pages inherit; their
// WaitUptodate blocks then record page-cache layer spans.
func (c *Cache) SetTracer(tr *trace.Tracer) { c.tr = tr }

// Stats returns cache statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Len reports the number of resident pages.
func (c *Cache) Len() int { return len(c.pages) }

// Lookup returns the resident, up-to-date page for key, counting a hit
// or miss. Pages under I/O count as misses for the caller's purposes
// but are returned so the caller can wait on them.
func (c *Cache) Lookup(key Key) *Page {
	pg := c.pages[key]
	if pg != nil && pg.Uptodate {
		c.stats.Hits++
		return pg
	}
	c.stats.Misses++
	return pg
}

// Peek returns the page without touching hit/miss statistics.
func (c *Cache) Peek(key Key) *Page { return c.pages[key] }

// GetOrCreate returns the page for key, creating a non-uptodate entry
// (and evicting if needed) when absent. created reports whether the
// page is new.
func (c *Cache) GetOrCreate(key Key) (pg *Page, created bool) {
	if pg = c.pages[key]; pg != nil {
		return pg, false
	}
	c.evictIfNeeded()
	pg = &Page{Key: key, wq: sim.NewWaitQueue(c.k, "page"), tr: c.tr}
	c.pages[key] = pg
	c.order = append(c.order, key)
	return pg, true
}

// MarkUptodate validates the page and wakes all waiters.
func (c *Cache) MarkUptodate(pg *Page) {
	pg.Uptodate = true
	pg.IO = false
	pg.wq.WakeAll()
}

// MarkDirty marks a page dirty at time now.
func (c *Cache) MarkDirty(pg *Page, now uint64) {
	if !pg.Dirty {
		pg.Dirty = true
		pg.DirtiedAt = now
	}
}

// MarkClean clears the dirty state after writeback.
func (c *Cache) MarkClean(pg *Page) {
	pg.Dirty = false
	pg.IO = false
}

// DirtyOlderThan returns the dirty pages whose age meets or exceeds age
// at time now, skipping pages already under I/O.
func (c *Cache) DirtyOlderThan(now, age uint64) []*Page {
	var out []*Page
	for _, key := range c.order {
		pg := c.pages[key]
		if pg != nil && pg.Dirty && !pg.IO && now-pg.DirtiedAt >= age {
			out = append(out, pg)
		}
	}
	return out
}

// DirtyCount reports the number of dirty resident pages.
func (c *Cache) DirtyCount() int {
	n := 0
	for _, pg := range c.pages {
		if pg.Dirty {
			n++
		}
	}
	return n
}

// DirtyOfInode returns the dirty pages of one inode (the fsync path).
func (c *Cache) DirtyOfInode(ino uint64) []*Page {
	var out []*Page
	for _, key := range c.order {
		if key.Ino != ino {
			continue
		}
		if pg := c.pages[key]; pg != nil && pg.Dirty {
			out = append(out, pg)
		}
	}
	return out
}

// DirtyPages returns every dirty page (for sync/fsync paths).
func (c *Cache) DirtyPages() []*Page {
	var out []*Page
	for _, key := range c.order {
		pg := c.pages[key]
		if pg != nil && pg.Dirty {
			out = append(out, pg)
		}
	}
	return out
}

// InvalidateInode drops all clean pages of an inode (unlink path).
func (c *Cache) InvalidateInode(ino uint64) {
	keep := c.order[:0]
	for _, key := range c.order {
		if key.Ino == ino {
			if pg := c.pages[key]; pg != nil && !pg.Dirty && !pg.IO {
				delete(c.pages, key)
				continue
			}
		}
		keep = append(keep, key)
	}
	c.order = keep
}

// EvictClean forcibly drops up to n clean idle pages, oldest first
// (n <= 0 means every one), regardless of capacity pressure — the
// fault-injection thrash path (internal/fault.CacheThrash). Dirty
// pages, pages under I/O, and pages with waiters survive, exactly as
// in capacity eviction. It returns the number of pages dropped.
func (c *Cache) EvictClean(n int) int {
	evicted := 0
	keep := c.order[:0]
	for _, key := range c.order {
		pg := c.pages[key]
		if pg == nil {
			continue
		}
		if (n <= 0 || evicted < n) && !pg.Dirty && !pg.IO && pg.wq.Len() == 0 {
			delete(c.pages, key)
			c.stats.Evictions++
			c.stats.ForcedEvictions++
			evicted++
			continue
		}
		keep = append(keep, key)
	}
	c.order = keep
	return evicted
}

// evictIfNeeded drops the oldest clean, idle pages until the cache is
// under capacity. Dirty or busy pages are skipped (they must be
// written back first), so the cache may temporarily overcommit when
// writers outrun the flushing daemon.
func (c *Cache) evictIfNeeded() {
	if c.capacity <= 0 {
		return
	}
	for len(c.pages) >= c.capacity {
		evicted := false
		for i, key := range c.order {
			pg := c.pages[key]
			if pg == nil {
				c.order = append(c.order[:i], c.order[i+1:]...)
				evicted = true
				break
			}
			if pg.Dirty || pg.IO || pg.wq.Len() > 0 {
				continue
			}
			delete(c.pages, key)
			c.order = append(c.order[:i], c.order[i+1:]...)
			c.stats.Evictions++
			evicted = true
			break
		}
		if !evicted {
			return // everything dirty or busy: overcommit
		}
	}
}

// Flusher is the buffer-flushing daemon (bdflush/kupdate): every
// Interval it writes back dirty pages older than Age.
type Flusher struct {
	// Interval is the wakeup period (default 5 s).
	Interval uint64

	// Age is the dirty age threshold (default 30 s, Linux's default
	// for data buffers; metadata uses 5 s).
	Age uint64

	// WritePage performs the actual writeback of one page; typically
	// it submits an asynchronous disk write and calls MarkClean on
	// completion. It must not block if Async is true.
	WritePage func(p *sim.Proc, pg *Page)

	// Runs counts daemon wakeups that found work.
	Runs uint64
}

// Start spawns the flusher daemon on kernel k against cache c.
func (f *Flusher) Start(k *sim.Kernel, c *Cache) {
	if f.Interval == 0 {
		f.Interval = 5 * cycles.PerSecond
	}
	if f.Age == 0 {
		f.Age = 30 * cycles.PerSecond
	}
	k.SpawnDaemon("bdflush", func(p *sim.Proc) {
		for {
			p.Sleep(f.Interval)
			dirty := c.DirtyOlderThan(p.Now(), f.Age)
			if len(dirty) == 0 {
				continue
			}
			f.Runs++
			for _, pg := range dirty {
				pg.IO = true
				f.WritePage(p, pg)
			}
		}
	})
}
