package mem

import (
	"testing"

	"osprof/internal/cycles"
	"osprof/internal/sim"
)

func newRig() (*sim.Kernel, *Cache) {
	k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 100})
	return k, NewCache(k, 64)
}

func TestLookupMissThenHit(t *testing.T) {
	_, c := newRig()
	key := Key{Ino: 1, Index: 0}
	if pg := c.Lookup(key); pg != nil {
		t.Fatal("lookup invented a page")
	}
	pg, created := c.GetOrCreate(key)
	if !created {
		t.Fatal("GetOrCreate did not create")
	}
	c.MarkUptodate(pg)
	if got := c.Lookup(key); got != pg {
		t.Fatal("lookup missed resident page")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLookupNonUptodateCountsMiss(t *testing.T) {
	_, c := newRig()
	key := Key{Ino: 1, Index: 0}
	c.GetOrCreate(key)
	if pg := c.Lookup(key); pg == nil || pg.Uptodate {
		t.Fatal("should return the in-flight page")
	}
	if c.Stats().Misses != 1 {
		t.Errorf("misses = %d", c.Stats().Misses)
	}
}

func TestWaitUptodateWakesOnIOCompletion(t *testing.T) {
	k, c := newRig()
	key := Key{Ino: 7, Index: 3}
	var waitTime uint64
	pg, _ := c.GetOrCreate(key)
	pg.IO = true
	k.Spawn("reader", func(p *sim.Proc) {
		start := p.Now()
		pg.WaitUptodate(p)
		waitTime = p.Now() - start
	})
	k.Spawn("io-completion", func(p *sim.Proc) {
		p.Sleep(5 * cycles.PerMillisecond)
		c.MarkUptodate(pg)
	})
	k.Run()
	if waitTime < 5*cycles.PerMillisecond {
		t.Errorf("waiter woke after %s, want >= 5ms", cycles.Format(waitTime))
	}
}

func TestWaitUptodateImmediateWhenValid(t *testing.T) {
	k, c := newRig()
	pg, _ := c.GetOrCreate(Key{Ino: 1, Index: 1})
	c.MarkUptodate(pg)
	k.Spawn("reader", func(p *sim.Proc) {
		start := p.Now()
		pg.WaitUptodate(p)
		if p.Now() != start {
			t.Error("wait on valid page consumed time")
		}
	})
	k.Run()
}

func TestEvictionSkipsDirtyAndBusy(t *testing.T) {
	k := sim.New(sim.Config{NumCPUs: 1})
	c := NewCache(k, 2)
	d1, _ := c.GetOrCreate(Key{Ino: 1, Index: 0})
	c.MarkUptodate(d1)
	c.MarkDirty(d1, 0)
	d2, _ := c.GetOrCreate(Key{Ino: 1, Index: 1})
	c.MarkUptodate(d2)
	// Cache full; inserting a third must evict d2 (clean), not d1.
	c.GetOrCreate(Key{Ino: 1, Index: 2})
	if c.Peek(Key{Ino: 1, Index: 0}) == nil {
		t.Error("dirty page was evicted")
	}
	if c.Peek(Key{Ino: 1, Index: 1}) != nil {
		t.Error("clean page survived eviction")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestDirtyAccounting(t *testing.T) {
	_, c := newRig()
	for i := uint64(0); i < 5; i++ {
		pg, _ := c.GetOrCreate(Key{Ino: 1, Index: i})
		c.MarkUptodate(pg)
		c.MarkDirty(pg, i*100)
	}
	if c.DirtyCount() != 5 {
		t.Errorf("DirtyCount = %d", c.DirtyCount())
	}
	old := c.DirtyOlderThan(500, 300)
	if len(old) != 3 { // dirtied at 0,100,200 are >= 300 old at t=500
		t.Errorf("old dirty pages = %d, want 3", len(old))
	}
	pg := c.Peek(Key{Ino: 1, Index: 0})
	c.MarkClean(pg)
	if c.DirtyCount() != 4 {
		t.Errorf("DirtyCount after clean = %d", c.DirtyCount())
	}
}

func TestMarkDirtyPreservesFirstDirtyTime(t *testing.T) {
	_, c := newRig()
	pg, _ := c.GetOrCreate(Key{Ino: 1, Index: 0})
	c.MarkDirty(pg, 100)
	c.MarkDirty(pg, 900)
	if pg.DirtiedAt != 100 {
		t.Errorf("DirtiedAt = %d, want 100 (first dirty)", pg.DirtiedAt)
	}
}

func TestDirtyOfInode(t *testing.T) {
	_, c := newRig()
	for ino := uint64(1); ino <= 2; ino++ {
		for i := uint64(0); i < 3; i++ {
			pg, _ := c.GetOrCreate(Key{Ino: ino, Index: i})
			c.MarkDirty(pg, 0)
		}
	}
	if got := len(c.DirtyOfInode(1)); got != 3 {
		t.Errorf("DirtyOfInode(1) = %d, want 3", got)
	}
}

func TestInvalidateInode(t *testing.T) {
	_, c := newRig()
	pg, _ := c.GetOrCreate(Key{Ino: 9, Index: 0})
	c.MarkUptodate(pg)
	other, _ := c.GetOrCreate(Key{Ino: 10, Index: 0})
	c.MarkUptodate(other)
	c.InvalidateInode(9)
	if c.Peek(Key{Ino: 9, Index: 0}) != nil {
		t.Error("invalidated page still resident")
	}
	if c.Peek(Key{Ino: 10, Index: 0}) == nil {
		t.Error("unrelated inode's page dropped")
	}
}

func TestFlusherWritesOldDirtyPages(t *testing.T) {
	k, c := newRig()
	written := 0
	fl := &Flusher{
		Interval: 100 * cycles.PerMillisecond,
		Age:      200 * cycles.PerMillisecond,
		WritePage: func(p *sim.Proc, pg *Page) {
			written++
			c.MarkClean(pg)
		},
	}
	fl.Start(k, c)
	k.Spawn("dirtier", func(p *sim.Proc) {
		pg, _ := c.GetOrCreate(Key{Ino: 1, Index: 0})
		c.MarkUptodate(pg)
		c.MarkDirty(pg, p.Now())
		// Young dirty page must survive the first flusher pass.
		p.Sleep(150 * cycles.PerMillisecond)
		if written != 0 {
			t.Error("flusher wrote a page younger than Age")
		}
		p.Sleep(400 * cycles.PerMillisecond)
	})
	k.Run()
	if written != 1 {
		t.Errorf("flusher wrote %d pages, want 1", written)
	}
	if c.DirtyCount() != 0 {
		t.Error("page still dirty after writeback")
	}
}

func TestFlusherDefaultsMatchBdflush(t *testing.T) {
	// §6.3: "the default is thirty seconds for data and five seconds
	// for metadata"; our defaults are the 5s wakeup and 30s age.
	f := &Flusher{WritePage: func(*sim.Proc, *Page) {}}
	k := sim.New(sim.Config{})
	f.Start(k, NewCache(k, 4))
	if f.Interval != 5*cycles.PerSecond {
		t.Errorf("Interval = %d", f.Interval)
	}
	if f.Age != 30*cycles.PerSecond {
		t.Errorf("Age = %d", f.Age)
	}
}
