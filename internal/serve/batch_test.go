package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"osprof/internal/live"
	"osprof/internal/report"
	"osprof/internal/serve"
	"osprof/internal/store"
)

// doRaw performs one request and returns the raw recorder, for tests
// that inspect status codes and headers themselves.
func doRaw(t *testing.T, h http.Handler, method, target string, body io.Reader) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, target, body)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	return rw
}

func mustDecode(t *testing.T, b []byte, out any) {
	t.Helper()
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatalf("decode: %v\n%s", err, b)
	}
}

// newServer returns the full Server (coalescer lifecycle included)
// over a fresh temp archive.
func newServer(t *testing.T, opts serve.Options) (*serve.Server, *store.Archive) {
	t.Helper()
	arch, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return serve.New(arch, opts), arch
}

// A batch of two distinct full envelopes answers the batch document
// with one archived result per envelope, in order.
func TestBatchIngestFullRuns(t *testing.T) {
	sv, _ := newServer(t, serve.Options{})
	h := sv.Handler()

	body := append(envelope(t, "app-a", 100, 200), envelope(t, "app-b", 300)...)
	var doc serve.IngestBatchDoc
	do(t, h, http.MethodPost, "/v1/ingest", body, http.StatusOK, &doc)
	if doc.Schema != serve.IngestBatchSchema || len(doc.Results) != 2 {
		t.Fatalf("batch doc: %+v", doc)
	}
	for i, name := range []string{"app-a", "app-b"} {
		r := doc.Results[i]
		if r.Status != serve.StatusArchived || !r.Created || r.ID == "" || r.Name != name {
			t.Fatalf("result %d: %+v", i, r)
		}
	}

	// The same batch again dedups: same IDs, nothing created.
	var again serve.IngestBatchDoc
	do(t, h, http.MethodPost, "/v1/ingest", body, http.StatusOK, &again)
	for i := range again.Results {
		if again.Results[i].Created || again.Results[i].ID != doc.Results[i].ID {
			t.Fatalf("re-ingest result %d: %+v", i, again.Results[i])
		}
	}

	// Within-batch dedup too: one envelope twice in one body.
	dup := append(envelope(t, "app-c", 500), envelope(t, "app-c", 500)...)
	var dd serve.IngestBatchDoc
	do(t, h, http.MethodPost, "/v1/ingest", dup, http.StatusOK, &dd)
	if !dd.Results[0].Created || dd.Results[1].Created || dd.Results[0].ID != dd.Results[1].ID {
		t.Fatalf("within-batch dedup: %+v", dd.Results)
	}
}

// Deltas coalesce in memory: nothing reaches the archive until the
// size threshold trips, and the flushed run is byte-identical to what
// a full export at the same point would have been (the chain-replay
// guarantee, observed through content-addressed dedup).
func TestDeltaCoalescingAndSizeFlush(t *testing.T) {
	sv, _ := newServer(t, serve.Options{FlushEnvelopes: 3})
	h := sv.Handler()

	rec := live.New()
	sess := rec.Session(nil, "fleet-app")
	var chain bytes.Buffer
	rec.Observe("read", 1_000)
	if err := sess.ExportDelta(&chain); err != nil {
		t.Fatal(err)
	}
	rec.Observe("read", 2_000)
	if err := sess.ExportDelta(&chain); err != nil {
		t.Fatal(err)
	}

	// Two deltas in one request: coalesced, archive still empty.
	var doc serve.IngestBatchDoc
	do(t, h, http.MethodPost, "/v1/ingest", chain.Bytes(), http.StatusOK, &doc)
	if len(doc.Results) != 2 || doc.Flushed != 0 {
		t.Fatalf("coalesce doc: %+v", doc)
	}
	for i, r := range doc.Results {
		if r.Status != serve.StatusCoalesced || r.Seq != i+1 || r.Name != "fleet-app" {
			t.Fatalf("result %d: %+v", i, r)
		}
	}
	var runs report.RunListDoc
	do(t, h, http.MethodGet, "/v1/runs", nil, http.StatusOK, &runs)
	if len(runs.Runs) != 0 {
		t.Fatalf("archive not empty before flush: %+v", runs)
	}

	// The third delta crosses FlushEnvelopes: the accumulation lands.
	rec.Observe("write", 3_000)
	var third bytes.Buffer
	if err := sess.ExportDelta(&third); err != nil {
		t.Fatal(err)
	}
	do(t, h, http.MethodPost, "/v1/ingest", third.Bytes(), http.StatusOK, &doc)
	if doc.Flushed != 1 || doc.Results[0].Status != serve.StatusCoalesced {
		t.Fatalf("flush doc: %+v", doc)
	}
	do(t, h, http.MethodGet, "/v1/runs", nil, http.StatusOK, &runs)
	if len(runs.Runs) != 1 {
		t.Fatalf("after flush: %+v", runs)
	}

	// Parity: a full export of the same session state dedups against
	// the flushed accumulation — identical bytes, identical address.
	var full bytes.Buffer
	if err := sess.Export(&full); err != nil {
		t.Fatal(err)
	}
	var ing serve.IngestDoc
	do(t, h, http.MethodPost, "/v1/ingest", full.Bytes(), http.StatusOK, &ing)
	if ing.Created || ing.ID != runs.Runs[0].ID {
		t.Fatalf("coalesced state diverged from full export: %+v vs %+v", ing, runs.Runs[0])
	}
}

// POST /v1/flush archives pending accumulations on demand, and the
// chain survives the flush: later deltas keep extending the same
// state.
func TestFlushEndpointAndChainContinuity(t *testing.T) {
	sv, _ := newServer(t, serve.Options{})
	h := sv.Handler()

	rec := live.New()
	sess := rec.Session(nil, "drain-app")
	rec.Observe("read", 1_000)
	var d1 bytes.Buffer
	if err := sess.ExportDelta(&d1); err != nil {
		t.Fatal(err)
	}
	do(t, h, http.MethodPost, "/v1/ingest", d1.Bytes(), http.StatusOK, nil)

	var fl serve.FlushDoc
	do(t, h, http.MethodPost, "/v1/flush", nil, http.StatusOK, &fl)
	if fl.Schema != serve.FlushSchema || fl.Flushed != 1 {
		t.Fatalf("flush: %+v", fl)
	}
	// Nothing dirty: flushing again is a no-op.
	do(t, h, http.MethodPost, "/v1/flush", nil, http.StatusOK, &fl)
	if fl.Flushed != 0 {
		t.Fatalf("idle flush: %+v", fl)
	}

	// The chain continues past the flush; the next flush archives the
	// extended state as a second, distinct run.
	rec.Observe("read", 2_000)
	var d2 bytes.Buffer
	if err := sess.ExportDelta(&d2); err != nil {
		t.Fatal(err)
	}
	var doc serve.IngestBatchDoc
	do(t, h, http.MethodPost, "/v1/ingest", d2.Bytes(), http.StatusOK, &doc)
	if doc.Results[0].Status != serve.StatusCoalesced || doc.Results[0].Seq != 2 {
		t.Fatalf("post-flush delta: %+v", doc.Results[0])
	}
	do(t, h, http.MethodPost, "/v1/flush", nil, http.StatusOK, &fl)
	if fl.Flushed != 1 {
		t.Fatalf("second flush: %+v", fl)
	}
	var runs report.RunListDoc
	do(t, h, http.MethodGet, "/v1/runs", nil, http.StatusOK, &runs)
	if len(runs.Runs) != 2 || runs.Runs[0].ID == runs.Runs[1].ID {
		t.Fatalf("chain continuity: %+v", runs)
	}
}

// Delta ordering rules: an unknown chain must start at seq 1, and a
// known chain only accepts the next seq. Violations are per-item
// errors; the rest of the batch still applies.
func TestDeltaSeqRules(t *testing.T) {
	sv, _ := newServer(t, serve.Options{})
	h := sv.Handler()

	rec := live.New()
	sess := rec.Session(nil, "seq-app")
	rec.Observe("read", 1_000)
	var d1 bytes.Buffer
	if err := sess.ExportDelta(&d1); err != nil {
		t.Fatal(err)
	}
	rec.Observe("read", 2_000)
	var d2 bytes.Buffer
	if err := sess.ExportDelta(&d2); err != nil {
		t.Fatal(err)
	}

	// Shipping seq 2 first: unknown chain, item error, batch still 200
	// because the full run alongside it applies.
	body := append(d2.Bytes(), envelope(t, "bystander", 100)...)
	var doc serve.IngestBatchDoc
	do(t, h, http.MethodPost, "/v1/ingest", body, http.StatusOK, &doc)
	if doc.Results[0].Status != serve.StatusError || doc.Results[0].Error == "" {
		t.Fatalf("unknown chain: %+v", doc.Results[0])
	}
	if doc.Results[1].Status != serve.StatusArchived {
		t.Fatalf("bystander: %+v", doc.Results[1])
	}

	// Start the chain properly, then replay seq 1: out of order.
	do(t, h, http.MethodPost, "/v1/ingest", append(d1.Bytes(), d2.Bytes()...), http.StatusOK, &doc)
	if doc.Results[0].Status != serve.StatusCoalesced || doc.Results[1].Status != serve.StatusCoalesced {
		t.Fatalf("chain start: %+v", doc.Results)
	}
	rec.Observe("read", 3_000)
	var d3 bytes.Buffer
	if err := sess.ExportDelta(&d3); err != nil {
		t.Fatal(err)
	}
	var d3Again bytes.Buffer
	d3Again.Write(d3.Bytes())
	do(t, h, http.MethodPost, "/v1/ingest", append(d3.Bytes(), d3Again.Bytes()...), http.StatusOK, &doc)
	if doc.Results[0].Status != serve.StatusCoalesced {
		t.Fatalf("seq 3: %+v", doc.Results[0])
	}
	if doc.Results[1].Status != serve.StatusError || doc.Results[1].Error == "" {
		t.Fatalf("replayed seq 3: %+v", doc.Results[1])
	}
}

// A seq-1 delta for a fingerprint with accumulated state restarts the
// chain: the previous accumulation is archived first, never dropped.
func TestChainRestartFlushesPriorState(t *testing.T) {
	sv, _ := newServer(t, serve.Options{})
	h := sv.Handler()

	ship := func(rec *live.Recorder, sess *live.Session, lat uint64) []byte {
		rec.Observe("read", lat)
		var buf bytes.Buffer
		if err := sess.ExportDelta(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Two recorder "incarnations" with the identical configuration —
	// the same fingerprint, as after a process restart.
	recA := live.New()
	do(t, h, http.MethodPost, "/v1/ingest", ship(recA, recA.Session(nil, "restart-app"), 1_000), http.StatusOK, nil)

	recB := live.New()
	var doc serve.IngestBatchDoc
	do(t, h, http.MethodPost, "/v1/ingest", ship(recB, recB.Session(nil, "restart-app"), 9_000), http.StatusOK, &doc)
	if doc.Flushed != 1 || doc.Results[0].Status != serve.StatusCoalesced || doc.Results[0].Seq != 1 {
		t.Fatalf("restart: %+v", doc)
	}
	var runs report.RunListDoc
	do(t, h, http.MethodGet, "/v1/runs", nil, http.StatusOK, &runs)
	if len(runs.Runs) != 1 {
		t.Fatalf("prior incarnation not archived: %+v", runs)
	}
}

// Backpressure: MaxPendingChains bounds coalescer memory. A new chain
// beyond the bound is refused per-item; when the refusal is the whole
// request, the status is 429 with Retry-After.
func TestCoalescerBackpressure(t *testing.T) {
	sv, _ := newServer(t, serve.Options{MaxPendingChains: 1})
	h := sv.Handler()

	start := func(name string) []byte {
		rec := live.New()
		sess := rec.Session(nil, name)
		rec.Observe("read", 1_000)
		var buf bytes.Buffer
		if err := sess.ExportDelta(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	do(t, h, http.MethodPost, "/v1/ingest", start("chain-1"), http.StatusOK, nil)

	// A second chain alone: nothing applies, so the request is 429.
	req := bytes.NewReader(start("chain-2"))
	r := doRaw(t, h, http.MethodPost, "/v1/ingest", req)
	if r.Code != http.StatusTooManyRequests || r.Header().Get("Retry-After") == "" {
		t.Fatalf("saturated: status=%d retry-after=%q\n%s", r.Code, r.Header().Get("Retry-After"), r.Body)
	}
	var doc serve.IngestBatchDoc
	mustDecode(t, r.Body.Bytes(), &doc)
	if doc.Results[0].Status != serve.StatusError {
		t.Fatalf("saturated item: %+v", doc.Results[0])
	}

	// Mixed with an applying envelope, the refusal stays per-item (200).
	body := append(start("chain-3"), envelope(t, "bystander", 100)...)
	do(t, h, http.MethodPost, "/v1/ingest", body, http.StatusOK, &doc)
	if doc.Results[0].Status != serve.StatusError || doc.Results[1].Status != serve.StatusArchived {
		t.Fatalf("mixed saturation: %+v", doc.Results)
	}

	// Draining via flush does not evict the chain (chains persist), so
	// the bound still holds — a documented property, not a bug.
	if _, err := sv.Flush(); err != nil {
		t.Fatal(err)
	}
}

// Oversized requests are rejected whole before any state changes:
// batches beyond MaxBatch and bodies beyond MaxBodyBytes are 413, and
// a parse error anywhere rejects the entire batch.
func TestBatchRejections(t *testing.T) {
	sv, arch := newServer(t, serve.Options{MaxBatch: 2, MaxBodyBytes: 1 << 16})
	h := sv.Handler()

	three := append(append(envelope(t, "a", 1), envelope(t, "b", 2)...), envelope(t, "c", 3)...)
	var errDoc serve.ErrorDoc
	do(t, h, http.MethodPost, "/v1/ingest", three, http.StatusRequestEntityTooLarge, &errDoc)
	if errDoc.Error == "" {
		t.Fatal("oversized batch: empty error")
	}

	huge := append(envelope(t, "big", 1), bytes.Repeat([]byte("x"), 1<<17)...)
	do(t, h, http.MethodPost, "/v1/ingest", huge, http.StatusRequestEntityTooLarge, &errDoc)
	if errDoc.Error == "" {
		t.Fatal("oversized body: empty error")
	}

	// Valid envelope followed by garbage: all-or-nothing, nothing lands.
	mixed := append(envelope(t, "good", 1), []byte("not an envelope\n")...)
	do(t, h, http.MethodPost, "/v1/ingest", mixed, http.StatusBadRequest, &errDoc)
	entries, err := arch.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("half-applied batch: %+v", entries)
	}
}

// FlushOverdue only archives accumulations older than FlushAge, and
// Close flushes everything — the shutdown guarantee.
func TestFlushOverdueAndClose(t *testing.T) {
	sv, arch := newServer(t, serve.Options{FlushAge: time.Hour})
	h := sv.Handler()

	rec := live.New()
	sess := rec.Session(nil, "age-app")
	rec.Observe("read", 1_000)
	var d bytes.Buffer
	if err := sess.ExportDelta(&d); err != nil {
		t.Fatal(err)
	}
	do(t, h, http.MethodPost, "/v1/ingest", d.Bytes(), http.StatusOK, nil)

	if n, err := sv.FlushOverdue(); err != nil || n != 0 {
		t.Fatalf("young accumulation flushed: n=%d err=%v", n, err)
	}
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := arch.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("close did not flush: %+v", entries)
	}
}

// GET /v1/runs pages with ?limit= and ?after=, and the cursor walks
// the whole archive without overlap or loss.
func TestRunsPaging(t *testing.T) {
	sv, _ := newServer(t, serve.Options{})
	h := sv.Handler()

	var ids []string
	for i := 0; i < 5; i++ {
		var ing serve.IngestDoc
		do(t, h, http.MethodPost, "/v1/ingest", envelope(t, fmt.Sprintf("app-%d", i), uint64(100*(i+1))), http.StatusOK, &ing)
		ids = append(ids, ing.ID)
	}

	var got []string
	after, pages := 0, 0
	for {
		var page report.RunListDoc
		do(t, h, http.MethodGet, fmt.Sprintf("/v1/runs?limit=2&after=%d", after), nil, http.StatusOK, &page)
		pages++
		for _, r := range page.Runs {
			got = append(got, r.ID)
		}
		if !page.Truncated {
			break
		}
		if page.NextAfter == 0 {
			t.Fatalf("truncated page without cursor: %+v", page)
		}
		after = page.NextAfter
	}
	if pages != 3 || len(got) != 5 {
		t.Fatalf("paging: %d pages, %d runs", pages, len(got))
	}
	for i, id := range ids {
		if got[i] != id {
			t.Fatalf("page order: got[%d]=%s want %s", i, got[i], id)
		}
	}

	// An unpaged listing of a small archive carries no paging fields.
	var all report.RunListDoc
	do(t, h, http.MethodGet, "/v1/runs", nil, http.StatusOK, &all)
	if all.Truncated || all.NextAfter != 0 || len(all.Runs) != 5 {
		t.Fatalf("full listing: %+v", all)
	}

	var errDoc serve.ErrorDoc
	do(t, h, http.MethodGet, "/v1/runs?limit=0", nil, http.StatusBadRequest, &errDoc)
	do(t, h, http.MethodGet, "/v1/runs?limit=nope", nil, http.StatusBadRequest, &errDoc)
	do(t, h, http.MethodGet, "/v1/runs?after=-3", nil, http.StatusBadRequest, &errDoc)
}
