package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"osprof/internal/core"
	"osprof/internal/summary"
	"osprof/internal/watch"
)

// WatchListSchema versions the GET /v1/watch response document.
const WatchListSchema = "osprof-watch-list/v1"

// watchEntry is one registered watch. The baseline reference is
// re-resolved at every evaluation, so blessing a new baseline
// (POST /v1/baseline) retargets a running watch without re-registering.
type watchEntry struct {
	Name string
	Ref  string // baseline reference; default "baseline:<name>"
	Last *watch.Report
}

// WatchDoc is one watch's registration and latest verdict, as served
// by GET /v1/watch and POST /v1/watch.
type WatchDoc struct {
	Name     string        `json:"name"`
	Baseline string        `json:"baseline"`
	Last     *watch.Report `json:"last,omitempty"`
}

// WatchListDoc is the GET /v1/watch response.
type WatchListDoc struct {
	Schema  string     `json:"schema"`
	Watches []WatchDoc `json:"watches"`
}

// watchRequest is the POST /v1/watch body.
type watchRequest struct {
	// Name is the run name to watch; every ingest of a run with this
	// name is evaluated.
	Name string `json:"name"`

	// Baseline optionally overrides the baseline reference
	// (latest:<name>, baseline:<name>, or a run-ID prefix). The
	// default is the blessed baseline for the watched name.
	Baseline string `json:"baseline"`
}

// setWatch registers (or retargets) a watch. The baseline must resolve
// at registration time, so a misspelled reference fails loudly here
// rather than silently producing anomaly verdicts forever.
func (s *server) setWatch(w http.ResponseWriter, r *http.Request) {
	var req watchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, "parse watch request: %v", err)
		return
	}
	if req.Name == "" {
		fail(w, http.StatusBadRequest, "watch request needs a run name")
		return
	}
	ref := req.Baseline
	if ref == "" {
		ref = "baseline:" + req.Name
	}
	if _, err := s.arch.ResolveRef(ref); err != nil {
		fail(w, http.StatusNotFound, "watch baseline %q: %v", ref, err)
		return
	}
	s.mu.Lock()
	entry, ok := s.watches[req.Name]
	if !ok {
		entry = &watchEntry{Name: req.Name}
		s.watches[req.Name] = entry
		s.order = append(s.order, req.Name)
	}
	entry.Ref = ref
	doc := WatchDoc{Name: entry.Name, Baseline: entry.Ref, Last: entry.Last}
	s.mu.Unlock()
	respond(w, http.StatusOK, doc)
}

// listWatches reports every registered watch and its latest verdict.
func (s *server) listWatches(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	doc := WatchListDoc{Schema: WatchListSchema, Watches: []WatchDoc{}}
	for _, name := range s.order {
		e := s.watches[name]
		doc.Watches = append(doc.Watches, WatchDoc{Name: e.Name, Baseline: e.Ref, Last: e.Last})
	}
	s.mu.Unlock()
	respond(w, http.StatusOK, doc)
}

// evaluateWatch runs the verdict engine for an ingested run when a
// watch is registered for its name (nil otherwise). It never fails: a
// baseline that no longer resolves (GC, deleted blessing) or a corpus
// error degrades to an anomaly verdict carrying the problem in Detail,
// because an ingest must not 5xx over a watch-side issue.
func (s *server) evaluateWatch(run *core.Run) *watch.Report {
	name := run.Name()
	s.mu.Lock()
	entry := s.watches[name]
	var ref string
	if entry != nil {
		ref = entry.Ref
	}
	s.mu.Unlock()
	if entry == nil {
		return nil
	}

	var rep *watch.Report
	if id, err := s.arch.ResolveRef(ref); err != nil {
		rep = &watch.Report{
			Schema:  watch.Schema,
			Name:    name,
			Verdict: watch.Anomaly,
			Detail:  fmt.Sprintf("baseline %q no longer resolves: %v", ref, err),
		}
	} else if baseline, err := s.arch.Get(id); err != nil {
		rep = &watch.Report{
			Schema:     watch.Schema,
			Name:       name,
			BaselineID: id,
			Verdict:    watch.Anomaly,
			Detail:     fmt.Sprintf("baseline %q unreadable: %v", ref, err),
		}
	} else if d, err := s.digest(id); err == nil &&
		summary.SetsIdentical(d.ss, summary.OfSet(run.Set, 0)) {
		// Summary fast path: a healthy re-ingest bit-identical to its
		// baseline (the steady state of a fleet reporting unchanged
		// profiles) verdicts from memoized digests alone — no diff, no
		// corpus load. SetsIdentical witnesses byte-equal histograms,
		// where the full ladder provably verdicts ok on every op.
		rep = &watch.Report{
			Schema:     watch.Schema,
			Name:       name,
			BaselineID: id,
			Verdict:    watch.OK,
			Detail: fmt.Sprintf("matches baseline across %d operations (summary fast path)",
				len(d.ss.Ops)),
		}
	} else {
		// Attribution is best-effort: a corpus problem must not mask
		// the diff verdict, so fall back to the corpus-less ladder.
		corpus, err := s.identifyCorpus()
		if err != nil {
			corpus = nil
		}
		rep = watch.New().Evaluate(baseline, run, corpus)
		rep.BaselineID = id
	}
	s.mu.Lock()
	entry.Last = rep
	s.mu.Unlock()
	return rep
}
