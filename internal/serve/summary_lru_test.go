package serve

import (
	"bytes"
	"fmt"
	"testing"

	"osprof/internal/core"
	"osprof/internal/live"
	"osprof/internal/store"
)

// TestDigestMemoLRU pins the digest memo's cache behavior: hits and
// misses are counted, a hit refreshes the entry's recency, and
// eviction removes the least-recently-used digest — not the
// first-inserted one, which is the observable difference from the old
// FIFO memo.
func TestDigestMemoLRU(t *testing.T) {
	arch, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// maxDigests+1 distinct tiny runs: enough to force exactly one
	// eviction after every resident slot is filled.
	ids := make([]string, maxDigests+1)
	for i := range ids {
		rec := live.New()
		rec.Observe("read", uint64(100+i))
		var buf bytes.Buffer
		if err := rec.Session(nil, fmt.Sprintf("lru-%d", i)).Export(&buf); err != nil {
			t.Fatal(err)
		}
		run, err := core.ReadRun(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if ids[i], _, err = arch.Put(run); err != nil {
			t.Fatal(err)
		}
	}

	sv := New(arch, Options{})
	s := sv.s
	get := func(id string) {
		t.Helper()
		if _, err := s.digest(id); err != nil {
			t.Fatal(err)
		}
	}

	// Fill the memo to capacity: every lookup misses.
	for _, id := range ids[:maxDigests] {
		get(id)
	}
	hits, misses, size := sv.DigestStats()
	if hits != 0 || misses != maxDigests || size != maxDigests {
		t.Fatalf("after fill: hits=%d misses=%d size=%d, want 0/%d/%d",
			hits, misses, size, maxDigests, maxDigests)
	}

	// Touch the first-inserted entry: a hit, and it becomes the most
	// recently used.
	get(ids[0])
	if hits, _, _ = sv.DigestStats(); hits != 1 {
		t.Fatalf("refresh of ids[0] did not count as a hit: hits=%d", hits)
	}

	// One insert beyond capacity evicts the least recently used entry.
	// FIFO would evict ids[0] (first inserted); LRU must evict ids[1]
	// instead, because ids[0] was just refreshed.
	get(ids[maxDigests])
	if _, _, size = sv.DigestStats(); size != maxDigests {
		t.Fatalf("eviction did not hold size at %d: size=%d", maxDigests, size)
	}
	get(ids[0]) // still resident: a hit
	hits, misses, _ = sv.DigestStats()
	if hits != 2 {
		t.Fatalf("ids[0] was evicted despite its refresh (FIFO behavior): hits=%d misses=%d", hits, misses)
	}
	wantMisses := uint64(maxDigests + 1)
	get(ids[1]) // evicted: a miss that reloads it
	hits, misses, _ = sv.DigestStats()
	if hits != 2 || misses != wantMisses+1 {
		t.Fatalf("ids[1] lookup: hits=%d misses=%d, want 2/%d", hits, misses, wantMisses+1)
	}
}
