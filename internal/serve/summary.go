// The service's summary tier: memoized per-run set digests
// (internal/summary) keyed on the run's content address, the
// GET /v1/summary endpoint, and the opt-in summary column of
// GET /v1/runs. Runs are content-addressed, so a digest never goes
// stale — the memo is a pure cache with FIFO eviction to bound memory.
package serve

import (
	"net/http"

	"osprof/internal/report"
	"osprof/internal/summary"
)

// maxDigests bounds the digest memo; beyond it the oldest entries are
// evicted FIFO. Digests are a few KB each, so the bound is generous.
const maxDigests = 512

// runDigest is one memoized run summary plus the run identity the
// document needs (the digest itself does not carry the content
// address).
type runDigest struct {
	ss          *summary.SetSummary
	name        string
	fingerprint string
}

// digest returns the memoized set digest for the archived run id,
// loading and summarizing the run on a miss. Safe for concurrent use;
// a racing double-load is harmless (same content, last write wins).
func (s *server) digest(id string) (*runDigest, error) {
	s.mu.Lock()
	d := s.digests[id]
	s.mu.Unlock()
	if d != nil {
		return d, nil
	}
	run, err := s.arch.Get(id)
	if err != nil {
		return nil, err
	}
	d = &runDigest{
		ss:          summary.OfSet(run.Set, summary.DefaultTopK),
		name:        run.Name(),
		fingerprint: run.Fingerprint,
	}
	s.mu.Lock()
	if s.digests == nil {
		s.digests = make(map[string]*runDigest)
	}
	if _, ok := s.digests[id]; !ok {
		s.digests[id] = d
		s.digestOrder = append(s.digestOrder, id)
		for len(s.digestOrder) > maxDigests {
			delete(s.digests, s.digestOrder[0])
			s.digestOrder = s.digestOrder[1:]
		}
	}
	s.mu.Unlock()
	return d, nil
}

// summaryHandler handles GET /v1/summary?ref=: the referenced run's
// set digest as osprof-summary/v1. The cheap read path for dashboards
// polling a run's latency surface — after the first request for a run
// the archive is not touched again.
func (s *server) summaryHandler(w http.ResponseWriter, r *http.Request) {
	ref := r.URL.Query().Get("ref")
	if ref == "" {
		fail(w, http.StatusBadRequest, "summary needs a run reference: /v1/summary?ref=...")
		return
	}
	id, err := s.arch.ResolveRef(ref)
	if err != nil {
		fail(w, http.StatusNotFound, "run: %v", err)
		return
	}
	d, err := s.digest(id)
	if err != nil {
		fail(w, http.StatusNotFound, "run %s: %v", id, err)
		return
	}
	doc := report.SummaryOf(d.ss)
	doc.ID = id
	doc.Fingerprint = d.fingerprint
	respond(w, http.StatusOK, doc)
}
