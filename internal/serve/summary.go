// The service's summary tier: memoized per-run set digests
// (internal/summary) keyed on the run's content address, the
// GET /v1/summary endpoint, and the opt-in summary column of
// GET /v1/runs. Runs are content-addressed, so a digest never goes
// stale — the memo is a pure cache with LRU eviction to bound memory:
// the runs a fleet actually polls (live baselines, fresh ingests) stay
// resident however many one-off historical reads pass through, where
// FIFO eviction would age out a hot baseline just because it was
// digested first.
package serve

import (
	"container/list"
	"net/http"

	"osprof/internal/report"
	"osprof/internal/summary"
)

// maxDigests bounds the digest memo; beyond it the least-recently-used
// entries are evicted. Digests are a few KB each, so the bound is
// generous.
const maxDigests = 512

// runDigest is one memoized run summary plus the run identity the
// document needs (the digest itself does not carry the content
// address).
type runDigest struct {
	ss          *summary.SetSummary
	name        string
	fingerprint string
}

// memoEntry is one digestList element: the content address (so
// eviction can unlink the map entry) plus the digest.
type memoEntry struct {
	id string
	d  *runDigest
}

// digest returns the memoized set digest for the archived run id,
// loading and summarizing the run on a miss. A hit moves the entry to
// the front of the LRU list; an insert beyond maxDigests evicts from
// the back. Safe for concurrent use; a racing double-load keeps the
// resident entry (same content address, same digest).
func (s *server) digest(id string) (*runDigest, error) {
	s.mu.Lock()
	if el, ok := s.digests[id]; ok {
		s.digestList.MoveToFront(el)
		s.digestHits++
		d := el.Value.(*memoEntry).d
		s.mu.Unlock()
		return d, nil
	}
	s.digestMisses++
	s.mu.Unlock()
	run, err := s.arch.Get(id)
	if err != nil {
		return nil, err
	}
	d := &runDigest{
		ss:          summary.OfSet(run.Set, summary.DefaultTopK),
		name:        run.Name(),
		fingerprint: run.Fingerprint,
	}
	s.mu.Lock()
	if el, ok := s.digests[id]; ok {
		s.digestList.MoveToFront(el)
		d = el.Value.(*memoEntry).d
	} else {
		if s.digests == nil {
			s.digests = make(map[string]*list.Element)
			s.digestList = list.New()
		}
		s.digests[id] = s.digestList.PushFront(&memoEntry{id: id, d: d})
		for len(s.digests) > maxDigests {
			back := s.digestList.Back()
			s.digestList.Remove(back)
			delete(s.digests, back.Value.(*memoEntry).id)
		}
	}
	s.mu.Unlock()
	return d, nil
}

// DigestStats reports the digest memo's lookup counters and resident
// size — the observability hook the cache-behavior tests (and capacity
// tuning) read.
func (sv *Server) DigestStats() (hits, misses uint64, size int) {
	s := sv.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.digestHits, s.digestMisses, len(s.digests)
}

// summaryHandler handles GET /v1/summary?ref=: the referenced run's
// set digest as osprof-summary/v1. The cheap read path for dashboards
// polling a run's latency surface — after the first request for a run
// the archive is not touched again.
func (s *server) summaryHandler(w http.ResponseWriter, r *http.Request) {
	ref := r.URL.Query().Get("ref")
	if ref == "" {
		fail(w, http.StatusBadRequest, "summary needs a run reference: /v1/summary?ref=...")
		return
	}
	id, err := s.arch.ResolveRef(ref)
	if err != nil {
		fail(w, http.StatusNotFound, "run: %v", err)
		return
	}
	d, err := s.digest(id)
	if err != nil {
		fail(w, http.StatusNotFound, "run %s: %v", id, err)
		return
	}
	doc := report.SummaryOf(d.ss)
	doc.ID = id
	doc.Fingerprint = d.fingerprint
	respond(w, http.StatusOK, doc)
}
