package serve_test

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"osprof/internal/report"
	"osprof/internal/serve"
	"osprof/internal/watch"
)

func TestSummaryEndpoint(t *testing.T) {
	h := newService(t)
	env := envelope(t, "myapp", 100, 2_000, 2_100, 2_050, 1<<20)

	var ing serve.IngestDoc
	do(t, h, http.MethodPost, "/v1/ingest", env, http.StatusOK, &ing)

	var doc report.SummaryDoc
	do(t, h, http.MethodGet, "/v1/summary?ref=latest:myapp", nil, http.StatusOK, &doc)
	if doc.Schema != report.SummarySchema || doc.ID != ing.ID || doc.Name != "myapp" {
		t.Fatalf("summary: %+v", doc)
	}
	if doc.Fingerprint != ing.Fingerprint {
		t.Fatalf("summary fingerprint %q, ingest %q", doc.Fingerprint, ing.Fingerprint)
	}
	if len(doc.Ops) != 1 || doc.Ops[0].Op != "read" || doc.Ops[0].Count != 5 {
		t.Fatalf("summary ops: %+v", doc.Ops)
	}
	if doc.Overall.Count != 5 || doc.Overall.P50 == 0 || doc.Overall.P999 < doc.Overall.P50 {
		t.Fatalf("summary overall: %+v", doc.Overall)
	}
	// The latencies 100..2100 dominate; the p50 must sit in their range
	// while the p999 reaches toward the 1<<20 outlier.
	if doc.Ops[0].P50 > 4_100 || doc.Ops[0].P999 <= 4_100 {
		t.Fatalf("quantiles off: p50=%d p999=%d", doc.Ops[0].P50, doc.Ops[0].P999)
	}
	if len(doc.HotByLatency) != 1 || doc.HotByLatency[0] != "read" {
		t.Fatalf("hottest: %+v", doc.HotByLatency)
	}

	// A by-ID reference resolves too, and answers the identical doc.
	var byID report.SummaryDoc
	do(t, h, http.MethodGet, "/v1/summary?ref="+ing.ID[:12], nil, http.StatusOK, &byID)
	if byID.ID != doc.ID || byID.Overall != doc.Overall {
		t.Fatalf("by-id summary diverges: %+v vs %+v", byID, doc)
	}

	// Missing and unresolvable references fail cleanly.
	do(t, h, http.MethodGet, "/v1/summary", nil, http.StatusBadRequest, nil)
	do(t, h, http.MethodGet, "/v1/summary?ref=latest:nope", nil, http.StatusNotFound, nil)
}

func TestRunsSummaryColumn(t *testing.T) {
	h := newService(t)
	do(t, h, http.MethodPost, "/v1/ingest", envelope(t, "app-a", 100, 200, 300), http.StatusOK, nil)
	do(t, h, http.MethodPost, "/v1/ingest", envelope(t, "app-b", 5_000, 6_000), http.StatusOK, nil)

	// The default listing stays summary-free (byte-stable documents).
	var plain report.RunListDoc
	do(t, h, http.MethodGet, "/v1/runs", nil, http.StatusOK, &plain)
	if len(plain.Runs) != 2 {
		t.Fatalf("runs: %+v", plain)
	}
	for _, e := range plain.Runs {
		if e.Summary != nil {
			t.Fatalf("plain listing grew a summary column: %+v", e)
		}
	}

	var doc report.RunListDoc
	do(t, h, http.MethodGet, "/v1/runs?summary=1", nil, http.StatusOK, &doc)
	if len(doc.Runs) != 2 {
		t.Fatalf("runs: %+v", doc)
	}
	for _, e := range doc.Runs {
		if e.Summary == nil {
			t.Fatalf("entry %s missing its summary column", e.ID)
		}
		if e.Summary.Ops != 1 || e.Summary.TotalOps == 0 || e.Summary.HotOp != "read" {
			t.Fatalf("entry %s summary: %+v", e.ID, e.Summary)
		}
	}
	if doc.Runs[0].Summary.TotalOps != 3 || doc.Runs[1].Summary.TotalOps != 2 {
		t.Fatalf("summary counts: %+v %+v", doc.Runs[0].Summary, doc.Runs[1].Summary)
	}
}

// A healthy re-ingest of a watched run — bit-identical to its blessed
// baseline — must verdict ok from the summary fast path, skipping the
// differential analysis entirely.
func TestWatchSummaryFastPath(t *testing.T) {
	h := newService(t)
	env := envelope(t, "steady", 100, 2_000, 2_100, 1<<20)

	var ing serve.IngestDoc
	do(t, h, http.MethodPost, "/v1/ingest", env, http.StatusOK, &ing)
	do(t, h, http.MethodPost, "/v1/baseline",
		[]byte(fmt.Sprintf(`{"run": %q}`, ing.ID)), http.StatusOK, nil)
	do(t, h, http.MethodPost, "/v1/watch",
		[]byte(`{"name": "steady"}`), http.StatusOK, nil)

	var again serve.IngestDoc
	do(t, h, http.MethodPost, "/v1/ingest", env, http.StatusOK, &again)
	if again.Watch == nil || again.Watch.Verdict != watch.OK {
		t.Fatalf("watched re-ingest: %+v", again.Watch)
	}
	if !strings.Contains(again.Watch.Detail, "summary fast path") {
		t.Fatalf("re-ingest took the slow path: %q", again.Watch.Detail)
	}
	if again.Watch.Diff != nil {
		t.Fatalf("fast path attached a diff: %+v", again.Watch.Diff)
	}

	// A drifted ingest must still escalate to the full ladder.
	drifted := envelope(t, "steady", 1<<22, 1<<22, 1<<22, 1<<22)
	var bad serve.IngestDoc
	do(t, h, http.MethodPost, "/v1/ingest", drifted, http.StatusOK, &bad)
	if bad.Watch == nil || bad.Watch.Verdict == watch.OK {
		t.Fatalf("drifted ingest: %+v", bad.Watch)
	}
	if strings.Contains(bad.Watch.Detail, "summary fast path") {
		t.Fatalf("drifted ingest took the fast path: %q", bad.Watch.Detail)
	}
	if bad.Watch.Diff == nil {
		t.Fatalf("drifted ingest carries no diff evidence: %+v", bad.Watch)
	}
}
