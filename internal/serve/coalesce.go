// Batched ingest and server-side delta coalescing: the fleet-scale
// half of the service. A recorder fleet reporting every interval would
// turn each tiny delta into an archive write; instead, POST /v1/ingest
// accepts any number of concatenated envelopes per request (full runs,
// incremental deltas, bare sets) and answers with one result per
// envelope, while same-fingerprint deltas merge into a bounded
// in-memory accumulator and only reach the archive when a flush
// threshold trips — size (envelopes merged), age (oldest unarchived
// merge), an explicit POST /v1/flush, or server shutdown. One archive
// append per flush instead of one per report: the write amplification
// drops by the coalescing factor while verdicts and dedup stay exactly
// as if every state had been ingested serially.
package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"osprof/internal/core"
	"osprof/internal/report"
	"osprof/internal/store"
	"osprof/internal/watch"
)

// IngestBatchSchema versions the batched /v1/ingest response document.
const IngestBatchSchema = "osprof-ingest-batch/v1"

// FlushSchema versions the POST /v1/flush response document.
const FlushSchema = "osprof-flush/v1"

// Batch item statuses.
const (
	StatusArchived  = "archived"  // full envelope written to the archive
	StatusCoalesced = "coalesced" // delta merged in memory, archived at next flush
	StatusError     = "error"     // this envelope was rejected (others may have landed)
)

// BatchItemDoc is one envelope's outcome inside a batched ingest
// response, aligned by position with the request's envelopes.
type BatchItemDoc struct {
	Status      string `json:"status"`
	ID          string `json:"id,omitempty"` // content address (archived only)
	Created     bool   `json:"created,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Name        string `json:"name,omitempty"`
	Seq         int    `json:"seq,omitempty"` // delta chain position (deltas only)
	Error       string `json:"error,omitempty"`

	// Watch is the continuous-anomaly verdict (archived envelopes with
	// a registered watch; coalesced deltas are evaluated at flush and
	// surface via GET /v1/watch).
	Watch *watch.Report `json:"watch,omitempty"`
}

// IngestBatchDoc is the batched /v1/ingest response.
type IngestBatchDoc struct {
	Schema  string         `json:"schema"`
	Results []BatchItemDoc `json:"results"`

	// Flushed counts coalesced accumulations this request pushed into
	// the archive (size threshold crossings and chain restarts).
	Flushed int `json:"flushed"`
}

// FlushDoc is the POST /v1/flush response.
type FlushDoc struct {
	Schema  string `json:"schema"`
	Flushed int    `json:"flushed"`
}

// Options tunes the ingest service. The zero value picks the defaults
// noted per field.
type Options struct {
	// MaxPendingChains bounds how many distinct delta chains
	// (fingerprints) the coalescer holds in memory; a new chain beyond
	// the bound is refused (429-style backpressure). Default 256.
	MaxPendingChains int

	// FlushEnvelopes is the size threshold: an accumulation that has
	// merged this many envelopes since its last archive write is
	// flushed at the end of the request. Default 64.
	FlushEnvelopes int

	// FlushAge is the age threshold used by FlushOverdue (driven by
	// the serve command's ticker): an accumulation whose oldest
	// unarchived merge is older gets flushed. Default 2s.
	FlushAge time.Duration

	// MaxBatch bounds the number of envelopes in one request body.
	// Default 1024.
	MaxBatch int

	// MaxBodyBytes bounds the request body (413 beyond). Default 16MB.
	MaxBodyBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxPendingChains <= 0 {
		o.MaxPendingChains = 256
	}
	if o.FlushEnvelopes <= 0 {
		o.FlushEnvelopes = 64
	}
	if o.FlushAge <= 0 {
		o.FlushAge = 2 * time.Second
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = maxEnvelopeBytes
	}
	return o
}

// Server is the profile service with an explicit lifecycle: its
// coalescer holds merged-but-unarchived delta state, so long-running
// deployments drive FlushOverdue from a ticker and Close on shutdown.
// The plain Handler function covers handler-only uses (tests, examples)
// where deltas still flush on the size threshold and POST /v1/flush.
type Server struct {
	s *server
}

// New builds the service over arch with the given options.
func New(arch *store.Archive, opts Options) *Server {
	return &Server{s: &server{
		arch:    arch,
		opts:    opts.withDefaults(),
		watches: make(map[string]*watchEntry),
		accums:  make(map[string]*accum),
	}}
}

// Handler returns the service's HTTP handler. The archive and the
// coalescer are safe for concurrent use, so one handler serves any
// number of in-flight requests.
func (sv *Server) Handler() http.Handler { return sv.s.handler() }

// Flush archives every accumulation holding unarchived merges and
// returns how many were written.
func (sv *Server) Flush() (int, error) { return sv.s.flush(false) }

// FlushOverdue archives the accumulations whose oldest unarchived
// merge is older than Options.FlushAge — the periodic tick that bounds
// how stale the archive can run behind the fleet.
func (sv *Server) FlushOverdue() (int, error) { return sv.s.flush(true) }

// Close flushes all pending state. The handler keeps working after
// Close; the call exists so shutdown cannot strand coalesced deltas.
func (sv *Server) Close() error {
	_, err := sv.s.flush(false)
	return err
}

// accum is one delta chain's server-side accumulation: the replayed
// full state plus flush bookkeeping.
type accum struct {
	run     *core.Run
	lastSeq int       // last applied delta seq
	dirty   int       // envelopes merged since the last archive write
	oldest  time.Time // arrival of the first unarchived merge
}

// ingest handles POST /v1/ingest: one or many concatenated envelopes.
// A single full-run body keeps the original osprof-ingest/v1 response
// shape; everything else answers osprof-ingest-batch/v1. The body is
// parsed completely before any state changes, so a malformed batch is
// rejected whole (400/413) rather than half-applied.
func (s *server) ingest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			fail(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return
		}
		fail(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var envs []core.Envelope
	rd := core.NewEnvelopeReader(bytes.NewReader(body))
	for {
		env, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail(w, http.StatusBadRequest, "parse run envelope %d: %v", len(envs)+1, err)
			return
		}
		if len(envs) >= s.opts.MaxBatch {
			fail(w, http.StatusRequestEntityTooLarge, "batch exceeds %d envelopes", s.opts.MaxBatch)
			return
		}
		envs = append(envs, env)
	}
	if len(envs) == 0 {
		fail(w, http.StatusBadRequest, "empty batch: no envelopes in body")
		return
	}

	// Back-compat: a single full-run body is the original ingest and
	// keeps its response shape (clients and CI smoke decode it).
	if len(envs) == 1 && envs[0].Run != nil {
		run := envs[0].Run
		id, created, err := s.arch.Put(run)
		if err != nil {
			fail(w, http.StatusInternalServerError, "archive: %v", err)
			return
		}
		respond(w, http.StatusOK, IngestDoc{
			Schema:      IngestSchema,
			ID:          id,
			Created:     created,
			Fingerprint: run.Fingerprint,
			Name:        run.Name(),
			Watch:       s.evaluateWatch(run),
		})
		return
	}
	s.ingestBatch(w, envs)
}

// ingestBatch applies a parsed envelope batch: full runs are queued
// for one archive PutBatch, deltas coalesce into their chains, and
// accumulations that cross the size threshold (or get restarted by a
// new chain) join the same PutBatch. Per-envelope failures are item
// results, not request failures; the request only answers 429 when
// backpressure refused every envelope.
func (s *server) ingestBatch(w http.ResponseWriter, envs []core.Envelope) {
	items := make([]BatchItemDoc, len(envs))
	var put []*core.Run // runs to archive, in arrival order
	var putItem []int   // items[i] per put entry; -1 for a coalescer flush
	applied, refused := 0, 0

	s.cmu.Lock()
	flushReady := make(map[string]bool)
	for i, env := range envs {
		if env.Run != nil {
			items[i] = BatchItemDoc{
				Status: StatusArchived, Fingerprint: env.Run.Fingerprint, Name: env.Run.Name(),
			}
			put = append(put, env.Run)
			putItem = append(putItem, i)
			applied++
			continue
		}
		d := env.Delta
		ac := s.accums[d.Fingerprint]
		if d.Seq == 1 {
			// A chain restart: archive what the previous incarnation
			// accumulated, then start fresh.
			if ac != nil && ac.dirty > 0 {
				put = append(put, ac.run.Clone())
				putItem = append(putItem, -1)
			}
			if ac == nil && len(s.accums) >= s.opts.MaxPendingChains {
				items[i] = BatchItemDoc{
					Status: StatusError, Fingerprint: d.Fingerprint, Seq: d.Seq,
					Error: fmt.Sprintf("coalescer full (%d chains pending); retry later", len(s.accums)),
				}
				refused++
				continue
			}
			ac = &accum{run: &core.Run{}}
			s.accums[d.Fingerprint] = ac
		} else if ac == nil {
			items[i] = BatchItemDoc{
				Status: StatusError, Fingerprint: d.Fingerprint, Seq: d.Seq,
				Error: fmt.Sprintf("unknown delta chain (seq %d with no accumulated state): restart the chain at seq 1", d.Seq),
			}
			continue
		} else if d.Seq != ac.lastSeq+1 {
			items[i] = BatchItemDoc{
				Status: StatusError, Fingerprint: d.Fingerprint, Seq: d.Seq,
				Error: fmt.Sprintf("out-of-order delta: got seq %d, want %d", d.Seq, ac.lastSeq+1),
			}
			continue
		}
		if err := ac.run.Apply(d); err != nil {
			items[i] = BatchItemDoc{
				Status: StatusError, Fingerprint: d.Fingerprint, Seq: d.Seq,
				Error: fmt.Sprintf("apply delta: %v", err),
			}
			continue
		}
		if ac.dirty == 0 {
			ac.oldest = time.Now()
		}
		ac.dirty++
		ac.lastSeq = d.Seq
		applied++
		items[i] = BatchItemDoc{
			Status: StatusCoalesced, Fingerprint: d.Fingerprint, Name: ac.run.Name(), Seq: d.Seq,
		}
		if ac.dirty >= s.opts.FlushEnvelopes {
			flushReady[d.Fingerprint] = true
		}
	}
	for fp := range flushReady {
		ac := s.accums[fp]
		put = append(put, ac.run.Clone())
		putItem = append(putItem, -1)
		ac.dirty = 0
	}
	s.cmu.Unlock()

	flushed := 0
	if len(put) > 0 {
		results, err := s.arch.PutBatch(put)
		if err != nil {
			fail(w, http.StatusInternalServerError, "archive: %v", err)
			return
		}
		for j, res := range results {
			if putItem[j] >= 0 {
				it := &items[putItem[j]]
				it.ID, it.Created = res.ID, res.Created
				it.Watch = s.evaluateWatch(put[j])
			} else {
				flushed++
				s.evaluateWatch(put[j])
			}
		}
	}

	status := http.StatusOK
	if refused > 0 && applied == 0 {
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	}
	respond(w, status, IngestBatchDoc{Schema: IngestBatchSchema, Results: items, Flushed: flushed})
}

// flush archives pending accumulations — all of them, or only the
// overdue ones (older than FlushAge since their first unarchived
// merge). Chain state stays resident so the chains continue; only the
// dirty counters reset.
func (s *server) flush(overdueOnly bool) (int, error) {
	s.cmu.Lock()
	var runs []*core.Run
	for _, ac := range s.accums {
		if ac.dirty == 0 {
			continue
		}
		if overdueOnly && time.Since(ac.oldest) < s.opts.FlushAge {
			continue
		}
		runs = append(runs, ac.run.Clone())
		ac.dirty = 0
	}
	s.cmu.Unlock()
	if len(runs) == 0 {
		return 0, nil
	}
	if _, err := s.arch.PutBatch(runs); err != nil {
		return 0, err
	}
	for _, r := range runs {
		s.evaluateWatch(r)
	}
	return len(runs), nil
}

// flushHandler handles POST /v1/flush: archive everything the
// coalescer holds. Tests and drain scripts use it to make "all deltas
// shipped so far" durable at a known point.
func (s *server) flushHandler(w http.ResponseWriter, r *http.Request) {
	n, err := s.flush(false)
	if err != nil {
		fail(w, http.StatusInternalServerError, "flush: %v", err)
		return
	}
	respond(w, http.StatusOK, FlushDoc{Schema: FlushSchema, Flushed: n})
}

// runs handles GET /v1/runs with cursor paging: ?after=<seq> resumes
// past a previous page's last sequence number and ?limit= bounds the
// page (default and cap defaultRunsLimit, so an unbounded archive
// cannot be asked for in one response). The response marks truncation
// and carries the next cursor. ?label= restricts the listing to runs
// carrying that corpus label (the v2 label-aware index), composing
// with the cursor: the Seq cursor pages the filtered sequence.
func (s *server) runs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := defaultRunsLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			fail(w, http.StatusBadRequest, "limit: want a positive integer, got %q", v)
			return
		}
		if n < limit {
			limit = n
		}
	}
	after := 0
	if v := q.Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			fail(w, http.StatusBadRequest, "after: want a non-negative sequence number, got %q", v)
			return
		}
		after = n
	}
	var entries []store.Entry
	var more bool
	var err error
	if label := q.Get("label"); label != "" {
		var labelAware bool
		entries, more, labelAware, err = s.arch.ListPageLabel(label, after, limit)
		if err == nil && !labelAware {
			fail(w, http.StatusConflict, "archive index predates label mirroring; re-record to rebuild it")
			return
		}
	} else {
		entries, more, err = s.arch.ListPage(after, limit)
	}
	if err != nil {
		fail(w, http.StatusInternalServerError, "archive: %v", err)
		return
	}
	doc := report.RunPage(entries, more)
	if v := q.Get("summary"); v != "" && v != "0" {
		// The opt-in triage column, from memoized digests (summary.go):
		// a listing-with-summaries re-poll touches the archive index
		// only. Best-effort per entry — a run GC'd between the index
		// read and the digest load just misses its column.
		for i := range doc.Runs {
			if d, err := s.digest(doc.Runs[i].ID); err == nil {
				doc.Runs[i].Summary = report.RunSummaryOf(d.ss)
			}
		}
	}
	respond(w, http.StatusOK, doc)
}

// defaultRunsLimit caps a GET /v1/runs page.
const defaultRunsLimit = 1000
