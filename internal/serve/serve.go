// Package serve implements the osprof profile service: a long-running
// HTTP/JSON facade over the content-addressed run archive
// (internal/store) and the differential engine (internal/diff), so the
// record/baseline/diff workflow works over the network. Live programs
// instrumented with the Recorder API export versioned run envelopes
// and POST them to /v1/ingest; CI gates and dashboards then list runs,
// bless baselines, and ask for pairwise diffs without sharing a
// filesystem with the producer — the "profile millions of live
// requests, compare centrally" deployment the paper's negligible
// overhead makes possible (§3.1, §5).
//
// Endpoints:
//
//	POST /v1/ingest        body: one or more concatenated envelopes —
//	                       full osprof-run (or bare osprof-set)
//	                       envelopes and osprof-run-delta increments,
//	                       in any mix. A single full-run body answers
//	                       the original osprof-ingest/v1 document; any
//	                       other body answers osprof-ingest-batch/v1
//	                       with one result per envelope. Deltas
//	                       coalesce in memory and reach the archive at
//	                       the next flush. Oversized bodies or batches
//	                       are 413; a request refused entirely by
//	                       coalescer backpressure is 429.
//	POST /v1/flush         archive every coalesced accumulation now;
//	                       answers osprof-flush/v1
//	GET  /v1/runs          the archive index as osprof-runs/v1 JSON,
//	                       cursor-paged: ?limit= bounds the page
//	                       (default/cap 1000), ?after=<seq> resumes
//	                       past a previous page; ?summary=1 adds the
//	                       per-run triage column (ops, totals, p50/
//	                       p99/p999, hottest op) from memoized digests
//	GET  /v1/summary       ?ref=<run reference>: the run's streaming
//	                       set digest (per-op quantiles, hottest ops)
//	                       as osprof-summary/v1, memoized per content
//	                       address
//	GET  /v1/diff/{a}/{b}  differential analysis of two run references
//	                       (latest:<name>, baseline:<name>, or a run-ID
//	                       prefix), as osprof-diff/v1 JSON; references
//	                       whose name contains a slash (every scenario
//	                       name does) use GET /v1/diff?a=...&b=...
//	GET  /v1/baseline      the blessed baselines as osprof-baselines/v1
//	                       JSON
//	POST /v1/baseline      bless a run: {"fingerprint": "...", "run":
//	                       "<ref>"} (fingerprint defaults to the
//	                       referenced run's own)
//	POST /v1/identify      body: an osprof-run (or bare osprof-set)
//	                       envelope; classifies it against the corpus
//	                       of labeled archived runs, returning an
//	                       osprof-identify/v1 verdict (a clean
//	                       abstention — empty corpus, foreign
//	                       configuration, ambiguous labels — is still
//	                       200; only an unparseable body is 400)
//	POST /v1/watch         register a continuous watch: {"name":
//	                       "<run name>", "baseline": "<ref, optional;
//	                       default baseline:<name>>"}. Every later
//	                       ingest of a run with that name is evaluated
//	                       against the baseline (diff, then degraded-
//	                       state attribution against the labeled
//	                       corpus) and the osprof-watch/v1 verdict
//	                       rides in the ingest response
//	GET  /v1/watch         the registered watches and their latest
//	                       verdicts as osprof-watch-list/v1 JSON
package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"osprof/internal/classify"
	"osprof/internal/core"
	"osprof/internal/diff"
	"osprof/internal/report"
	"osprof/internal/store"
	"osprof/internal/watch"
)

// maxEnvelopeBytes bounds an ingested envelope. Profiles are tiny by
// design (under 1KB per operation, §5.1), so even a run with thousands
// of operations fits comfortably; the bound exists to shed abusive
// payloads before parsing.
const maxEnvelopeBytes = 16 << 20

// IngestSchema versions the /v1/ingest response document.
const IngestSchema = "osprof-ingest/v1"

// IngestDoc is the /v1/ingest response: the archived run's identity,
// plus the watch verdict when a watch is registered for the run's name.
type IngestDoc struct {
	Schema      string `json:"schema"`
	ID          string `json:"id"`
	Created     bool   `json:"created"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Name        string `json:"name"`

	// Watch is the continuous-anomaly verdict for this ingest (only
	// when a watch is registered for Name).
	Watch *watch.Report `json:"watch,omitempty"`
}

// ErrorDoc is the JSON error body for non-2xx responses.
type ErrorDoc struct {
	Error string `json:"error"`
}

// server carries the shared archive behind the handlers, plus the
// memoized identification corpus (see identifyCorpus), the watch
// registry, and the delta coalescer (coalesce.go).
type server struct {
	arch *store.Archive
	opts Options

	mu        sync.Mutex
	corpusKey string
	corpus    *classify.Corpus
	watches   map[string]*watchEntry // by watched run name
	order     []string               // registration order

	// digests memoizes per-run set summaries by content address
	// (summary.go); digestList orders entries most-recently-used
	// first, driving LRU eviction, and the counters witness the
	// memo's effectiveness.
	digests      map[string]*list.Element
	digestList   *list.List
	digestHits   uint64
	digestMisses uint64

	// cmu guards the coalescer: per-fingerprint delta accumulations.
	// Separate from mu so slow corpus builds never block ingest.
	cmu    sync.Mutex
	accums map[string]*accum // by fingerprint
}

// Handler returns the service's HTTP handler over arch with default
// Options. Deployments that need the coalescer lifecycle (periodic
// age-based flushing, flush-on-shutdown) use New and the Server type
// instead.
func Handler(arch *store.Archive) http.Handler {
	return New(arch, Options{}).Handler()
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", s.ingest)
	mux.HandleFunc("POST /v1/flush", s.flushHandler)
	mux.HandleFunc("GET /v1/runs", s.runs)
	mux.HandleFunc("GET /v1/summary", s.summaryHandler)
	mux.HandleFunc("GET /v1/diff/{a}/{b}", s.diff)
	mux.HandleFunc("GET /v1/diff", s.diff) // ?a=&b= for slash-qualified names
	mux.HandleFunc("GET /v1/baseline", s.baselines)
	mux.HandleFunc("POST /v1/baseline", s.setBaseline)
	mux.HandleFunc("POST /v1/identify", s.identify)
	mux.HandleFunc("POST /v1/watch", s.setWatch)
	mux.HandleFunc("GET /v1/watch", s.listWatches)
	return mux
}

// respond writes v as the JSON body with the given status.
func respond(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = report.JSON(w, v)
}

// fail writes a JSON error body.
func fail(w http.ResponseWriter, status int, format string, args ...any) {
	respond(w, status, ErrorDoc{Error: fmt.Sprintf(format, args...)})
}

// resolve loads the run a reference names: latest:<name>,
// baseline:<name>, or a run-ID prefix (store.Archive.ResolveRef, the
// same resolver the CLI uses).
func (s *server) resolve(ref string) (*core.Run, error) {
	id, err := s.arch.ResolveRef(ref)
	if err != nil {
		return nil, err
	}
	return s.arch.Get(id)
}

// diff runs the differential analysis of two referenced runs. The
// references come from the path segments or, for names that contain
// slashes (every scenario name does — "ext2/readzero"), from the
// ?a=&b= query parameters, since a path segment cannot hold an
// unescaped slash. The engine reuses scratch state, so each request
// gets its own. The summary-first engine answers healthy pairs from
// digests alone (verdict parity with the full engine is pinned by the
// diff package's parity gate).
func (s *server) diff(w http.ResponseWriter, r *http.Request) {
	refA, refB := r.PathValue("a"), r.PathValue("b")
	if refA == "" {
		refA, refB = r.URL.Query().Get("a"), r.URL.Query().Get("b")
	}
	if refA == "" || refB == "" {
		fail(w, http.StatusBadRequest, "diff needs two run references: /v1/diff/{a}/{b} or /v1/diff?a=...&b=...")
		return
	}
	a, err := s.resolve(refA)
	if err != nil {
		fail(w, http.StatusNotFound, "run A: %v", err)
		return
	}
	b, err := s.resolve(refB)
	if err != nil {
		fail(w, http.StatusNotFound, "run B: %v", err)
		return
	}
	respond(w, http.StatusOK, diff.NewSummaryFirst().Runs(a, b))
}

// identifyCorpus returns the identification corpus, rebuilding it only
// when the archive index changed since the last build. Ingests may add
// labeled runs at any time, but an unchanged index means an unchanged
// corpus, so the common case (many identifications between ingests)
// costs one small index read instead of loading every archived object
// per request. The key covers the entry count plus the last entry's
// identity: any Put appends (new last entry) and any GC removes
// entries (count or last entry changes), so a stale hit would need an
// index with the same length and the same newest run, which is the
// same corpus.
func (s *server) identifyCorpus() (*classify.Corpus, error) {
	entries, err := s.arch.List()
	if err != nil {
		return nil, err
	}
	key := "empty"
	if n := len(entries); n > 0 {
		key = fmt.Sprintf("%d:%d:%s", n, entries[n-1].Seq, entries[n-1].ID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.corpus != nil && s.corpusKey == key {
		return s.corpus, nil
	}
	corpus, _, err := classify.FromArchive(s.arch)
	if err != nil {
		return nil, err
	}
	s.corpusKey, s.corpus = key, corpus
	return corpus, nil
}

// identify classifies a posted run envelope against the corpus of
// labeled archived runs (memoized per index state; a fresh classifier
// per request keeps the handler safe for any number of in-flight
// identifications). The classifier pre-filters by summary distance
// (label/abstention parity with the exhaustive evaluation is pinned by
// the classify package's crossval gate). Garbage bodies are the
// client's fault (400); everything after the parse — including an
// archive with no labeled runs at all — answers with a verdict
// document, because an abstention is a result, not an error.
func (s *server) identify(w http.ResponseWriter, r *http.Request) {
	run, err := core.ReadRun(http.MaxBytesReader(w, r.Body, maxEnvelopeBytes))
	if err != nil {
		fail(w, http.StatusBadRequest, "parse run envelope: %v", err)
		return
	}
	corpus, err := s.identifyCorpus()
	if err != nil {
		fail(w, http.StatusInternalServerError, "corpus: %v", err)
		return
	}
	c := classify.New()
	c.Prefilter = classify.DefaultPrefilter
	respond(w, http.StatusOK, c.Identify(corpus, run))
}

// baselines lists the blessed baseline pointers.
func (s *server) baselines(w http.ResponseWriter, r *http.Request) {
	m, err := s.arch.Baselines()
	if err != nil {
		fail(w, http.StatusInternalServerError, "archive: %v", err)
		return
	}
	respond(w, http.StatusOK, report.BaselineList(m))
}

// baselineRequest is the POST /v1/baseline body.
type baselineRequest struct {
	// Fingerprint keys the baseline; when empty, the referenced run's
	// own fingerprint is used (the common case: bless what was just
	// ingested).
	Fingerprint string `json:"fingerprint"`

	// Run references the run to bless: latest:<name>, baseline:<name>,
	// or a run-ID prefix.
	Run string `json:"run"`
}

// setBaseline blesses a run as the baseline for its fingerprint.
func (s *server) setBaseline(w http.ResponseWriter, r *http.Request) {
	var req baselineRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, "parse baseline request: %v", err)
		return
	}
	if req.Run == "" {
		fail(w, http.StatusBadRequest, "baseline request needs a run reference")
		return
	}
	id, err := s.arch.ResolveRef(req.Run)
	if err != nil {
		fail(w, http.StatusNotFound, "run: %v", err)
		return
	}
	fp := req.Fingerprint
	if fp == "" {
		run, err := s.arch.Get(id)
		if err != nil {
			fail(w, http.StatusNotFound, "run: %v", err)
			return
		}
		fp = run.Fingerprint
	}
	if err := s.arch.SetBaseline(fp, id); err != nil {
		fail(w, http.StatusBadRequest, "set baseline: %v", err)
		return
	}
	respond(w, http.StatusOK, report.BaselineEntry{Fingerprint: fp, Run: id})
}
