package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"osprof/internal/live"
	"osprof/internal/serve"
	"osprof/internal/store"
	"osprof/internal/watch"
)

// healthyLats is a bimodal profile; flakyLats shifts the slow mode up
// by latency classes (the degraded twin); weirdLats matches nothing.
func healthyLats() []uint64 {
	out := make([]uint64, 0, 240)
	for i := 0; i < 200; i++ {
		out = append(out, 100+uint64(i%3))
	}
	for i := 0; i < 40; i++ {
		out = append(out, 1<<13+uint64(i))
	}
	return out
}

func flakyLats() []uint64 {
	out := make([]uint64, 0, 240)
	for i := 0; i < 200; i++ {
		out = append(out, 100+uint64(i%3))
	}
	for i := 0; i < 40; i++ {
		out = append(out, 1<<19+uint64(i))
	}
	return out
}

func weirdLats() []uint64 {
	out := make([]uint64, 100)
	for i := range out {
		out[i] = 1 << 28
	}
	return out
}

func TestWatchLifecycle(t *testing.T) {
	h := newService(t)

	// Record and bless the healthy baseline.
	var ing serve.IngestDoc
	do(t, h, http.MethodPost, "/v1/ingest", envelope(t, "app", healthyLats()...), http.StatusOK, &ing)
	if ing.Watch != nil {
		t.Error("unwatched ingest carried a watch verdict")
	}
	do(t, h, http.MethodPost, "/v1/baseline",
		[]byte(fmt.Sprintf(`{"run": %q}`, ing.ID)), http.StatusOK, nil)

	// Register the watch; the default baseline reference is the
	// blessed baseline for the watched name.
	var reg serve.WatchDoc
	do(t, h, http.MethodPost, "/v1/watch", []byte(`{"name": "app"}`), http.StatusOK, &reg)
	if reg.Name != "app" || reg.Baseline != "baseline:app" || reg.Last != nil {
		t.Fatalf("registration doc = %+v", reg)
	}

	// A healthy re-ingest verdicts ok.
	do(t, h, http.MethodPost, "/v1/ingest", envelope(t, "app", healthyLats()...), http.StatusOK, &ing)
	if ing.Watch == nil || ing.Watch.Verdict != watch.OK {
		t.Fatalf("healthy re-ingest watch = %+v", ing.Watch)
	}

	// A drifted ingest with no labeled corpus verdicts anomaly, with
	// per-op evidence.
	do(t, h, http.MethodPost, "/v1/ingest", envelope(t, "app", weirdLats()...), http.StatusOK, &ing)
	if ing.Watch == nil || ing.Watch.Verdict != watch.Anomaly {
		t.Fatalf("drifted ingest watch = %+v", ing.Watch)
	}
	if ing.Watch.Diff == nil || len(ing.Watch.Diff.ChangedOps()) == 0 {
		t.Error("anomaly verdict without per-op evidence")
	}

	// The registry remembers the latest verdict.
	var list serve.WatchListDoc
	do(t, h, http.MethodGet, "/v1/watch", nil, http.StatusOK, &list)
	if list.Schema != serve.WatchListSchema || len(list.Watches) != 1 {
		t.Fatalf("watch list = %+v", list)
	}
	if last := list.Watches[0].Last; last == nil || last.Verdict != watch.Anomaly {
		t.Errorf("list kept %+v, want the anomaly verdict", list.Watches[0].Last)
	}

	// Ingests of other names stay unwatched.
	var other serve.IngestDoc
	do(t, h, http.MethodPost, "/v1/ingest", envelope(t, "other", 100, 200), http.StatusOK, &other)
	if other.Watch != nil {
		t.Error("ingest of an unwatched name carried a verdict")
	}
}

// With a labeled degraded corpus member archived, the watch names the
// failure mode instead of reporting an unknown anomaly.
func TestWatchAttributesDegradedState(t *testing.T) {
	h := newService(t)
	do(t, h, http.MethodPost, "/v1/ingest",
		labeledEnvelope(t, "app-disk-flaky", map[string][]uint64{"read": flakyLats()}), http.StatusOK, nil)

	var ing serve.IngestDoc
	do(t, h, http.MethodPost, "/v1/ingest", envelope(t, "app", healthyLats()...), http.StatusOK, &ing)
	do(t, h, http.MethodPost, "/v1/baseline",
		[]byte(fmt.Sprintf(`{"run": %q}`, ing.ID)), http.StatusOK, nil)
	do(t, h, http.MethodPost, "/v1/watch", []byte(`{"name": "app"}`), http.StatusOK, nil)

	do(t, h, http.MethodPost, "/v1/ingest", envelope(t, "app", flakyLats()...), http.StatusOK, &ing)
	if ing.Watch == nil || ing.Watch.Verdict != watch.Degraded {
		t.Fatalf("degraded ingest watch = %+v", ing.Watch)
	}
	if ing.Watch.Label != "app-disk-flaky" {
		t.Errorf("attributed to %q, want app-disk-flaky", ing.Watch.Label)
	}
	if ing.Watch.Identify == nil || !ing.Watch.Identify.Matched {
		t.Error("degraded verdict without the classifier report")
	}
}

func TestWatchRegistrationValidation(t *testing.T) {
	h := newService(t)
	do(t, h, http.MethodPost, "/v1/watch", []byte("not json"), http.StatusBadRequest, nil)
	do(t, h, http.MethodPost, "/v1/watch", []byte(`{"baseline": "x"}`), http.StatusBadRequest, nil)
	// No blessed baseline for the name yet: registration must fail
	// loudly, not produce anomaly verdicts forever.
	do(t, h, http.MethodPost, "/v1/watch", []byte(`{"name": "app"}`), http.StatusNotFound, nil)
	do(t, h, http.MethodPost, "/v1/watch",
		[]byte(`{"name": "app", "baseline": "deadbeef"}`), http.StatusNotFound, nil)

	var list serve.WatchListDoc
	do(t, h, http.MethodGet, "/v1/watch", nil, http.StatusOK, &list)
	if len(list.Watches) != 0 {
		t.Errorf("failed registrations leaked into the registry: %+v", list.Watches)
	}
}

// Re-registering a name retargets its baseline in place.
func TestWatchRetarget(t *testing.T) {
	h := newService(t)
	var a, b serve.IngestDoc
	do(t, h, http.MethodPost, "/v1/ingest", envelope(t, "app", healthyLats()...), http.StatusOK, &a)
	do(t, h, http.MethodPost, "/v1/ingest", envelope(t, "app", weirdLats()...), http.StatusOK, &b)

	var reg serve.WatchDoc
	do(t, h, http.MethodPost, "/v1/watch",
		[]byte(fmt.Sprintf(`{"name": "app", "baseline": %q}`, a.ID)), http.StatusOK, &reg)
	if reg.Baseline != a.ID {
		t.Fatalf("baseline = %q, want %q", reg.Baseline, a.ID)
	}
	do(t, h, http.MethodPost, "/v1/watch",
		[]byte(fmt.Sprintf(`{"name": "app", "baseline": %q}`, b.ID)), http.StatusOK, &reg)
	if reg.Baseline != b.ID {
		t.Fatalf("retargeted baseline = %q, want %q", reg.Baseline, b.ID)
	}
	var list serve.WatchListDoc
	do(t, h, http.MethodGet, "/v1/watch", nil, http.StatusOK, &list)
	if len(list.Watches) != 1 {
		t.Errorf("retarget duplicated the watch: %+v", list.Watches)
	}

	// The retargeted baseline drives the verdict: an ingest matching
	// run B is now ok, one matching run A drifts.
	var ing serve.IngestDoc
	do(t, h, http.MethodPost, "/v1/ingest", envelope(t, "app", weirdLats()...), http.StatusOK, &ing)
	if ing.Watch == nil || ing.Watch.Verdict != watch.OK {
		t.Errorf("ingest matching the new baseline = %+v", ing.Watch)
	}
	do(t, h, http.MethodPost, "/v1/ingest", envelope(t, "app", healthyLats()...), http.StatusOK, &ing)
	if ing.Watch == nil || ing.Watch.Verdict == watch.OK {
		t.Errorf("ingest drifted from the new baseline = %+v", ing.Watch)
	}
}

// FuzzWatch drives arbitrary bodies through the watch surface
// interleaved with ingests: the service must never 5xx and every
// verdict it produces must marshal as JSON.
func FuzzWatch(f *testing.F) {
	f.Add([]byte(`{"name": "app"}`), []byte("x"))
	f.Add([]byte(`{"name": "", "baseline": "latest:app"}`), []byte("{}"))
	f.Add([]byte(`{"name": "app", "baseline": "deadbeef"}`), []byte(`{"schema":"osprof-run/v1"}`))
	f.Add([]byte("not json at all"), []byte("osprof-set v1\n"))

	arch, err := store.Open(f.TempDir())
	if err != nil {
		f.Fatal(err)
	}
	h := serve.Handler(arch)
	seed := func(name string, lats []uint64) []byte {
		rec := live.New()
		for _, l := range lats {
			rec.Observe("read", l)
		}
		var buf bytes.Buffer
		if err := rec.Session(nil, name).Export(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	post := func(tb testing.TB, target string, body []byte) *httptest.ResponseRecorder {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, target, bytes.NewReader(body)))
		if rw.Code >= 500 {
			tb.Fatalf("POST %s 5xx: %d\n%s", target, rw.Code, rw.Body)
		}
		return rw
	}
	// Bless a real baseline so some fuzz registrations succeed and
	// later ingests exercise the evaluation path, not just validation.
	var ing serve.IngestDoc
	rw := post(f, "/v1/ingest", seed("app", healthyLats()))
	if err := json.Unmarshal(rw.Body.Bytes(), &ing); err != nil {
		f.Fatal(err)
	}
	post(f, "/v1/baseline", []byte(fmt.Sprintf(`{"run": %q}`, ing.ID)))

	f.Fuzz(func(t *testing.T, watchBody, ingestBody []byte) {
		post(t, "/v1/watch", watchBody)
		post(t, "/v1/ingest", ingestBody)
		post(t, "/v1/watch", []byte(`{"name": "app"}`))
		post(t, "/v1/ingest", seed("app", flakyLats()))

		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/v1/watch", nil))
		if rw.Code != http.StatusOK {
			t.Fatalf("GET /v1/watch: %d\n%s", rw.Code, rw.Body)
		}
		var list serve.WatchListDoc
		if err := json.Unmarshal(rw.Body.Bytes(), &list); err != nil {
			t.Fatalf("watch list is not JSON: %v\n%s", err, rw.Body)
		}
		for _, wd := range list.Watches {
			if wd.Last == nil {
				continue
			}
			if _, err := json.Marshal(wd.Last); err != nil {
				t.Errorf("verdict for %q does not marshal: %v", wd.Name, err)
			}
		}
	})
}
