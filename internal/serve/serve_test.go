package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"osprof/internal/diff"
	"osprof/internal/live"
	"osprof/internal/report"
	"osprof/internal/serve"
	"osprof/internal/store"
)

// newService returns a handler over a fresh temp archive.
func newService(t *testing.T) http.Handler {
	t.Helper()
	arch, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return serve.Handler(arch)
}

// envelope exports a small deterministic live-session run.
func envelope(t *testing.T, name string, latencies ...uint64) []byte {
	t.Helper()
	rec := live.New()
	for _, l := range latencies {
		rec.Observe("read", l)
	}
	var buf bytes.Buffer
	if err := rec.Session(nil, name).Export(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// do performs one request against the handler and decodes the JSON
// response body into out (unless out is nil).
func do(t *testing.T, h http.Handler, method, target string, body []byte, wantStatus int, out any) {
	t.Helper()
	req := httptest.NewRequest(method, target, bytes.NewReader(body))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != wantStatus {
		t.Fatalf("%s %s: status %d, want %d\n%s", method, target, rw.Code, wantStatus, rw.Body)
	}
	if ct := rw.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s %s: content type %q", method, target, ct)
	}
	if out != nil {
		if err := json.Unmarshal(rw.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decode: %v\n%s", method, target, err, rw.Body)
		}
	}
}

func TestIngestListDiffBaselineWorkflow(t *testing.T) {
	h := newService(t)
	env := envelope(t, "myapp", 100, 2_000, 2_100, 1<<20)

	// Ingest; re-ingesting the identical envelope dedups.
	var ing serve.IngestDoc
	do(t, h, http.MethodPost, "/v1/ingest", env, http.StatusOK, &ing)
	if !ing.Created || ing.ID == "" || ing.Name != "myapp" || ing.Fingerprint == "" ||
		ing.Schema != serve.IngestSchema {
		t.Fatalf("ingest: %+v", ing)
	}
	var again serve.IngestDoc
	do(t, h, http.MethodPost, "/v1/ingest", env, http.StatusOK, &again)
	if again.Created || again.ID != ing.ID {
		t.Fatalf("re-ingest: %+v", again)
	}

	// The run shows up in the listing.
	var runs report.RunListDoc
	do(t, h, http.MethodGet, "/v1/runs", nil, http.StatusOK, &runs)
	if runs.Schema != report.RunsSchema || len(runs.Runs) != 1 || runs.Runs[0].ID != ing.ID {
		t.Fatalf("runs: %+v", runs)
	}

	// Bless it as the baseline (fingerprint defaults to the run's own).
	var blessed report.BaselineEntry
	do(t, h, http.MethodPost, "/v1/baseline",
		[]byte(fmt.Sprintf(`{"run": %q}`, ing.ID[:12])), http.StatusOK, &blessed)
	if blessed.Fingerprint != ing.Fingerprint || blessed.Run != ing.ID {
		t.Fatalf("bless: %+v", blessed)
	}
	var bl report.BaselineListDoc
	do(t, h, http.MethodGet, "/v1/baseline", nil, http.StatusOK, &bl)
	if bl.Schema != report.BaselinesSchema || len(bl.Baselines) != 1 ||
		bl.Baselines[0].Run != ing.ID {
		t.Fatalf("baselines: %+v", bl)
	}

	// Self-diff through every reference form: all unchanged.
	for _, pair := range [][2]string{
		{ing.ID, ing.ID},
		{"latest:myapp", ing.ID[:12]},
		{"baseline:myapp", "latest:myapp"},
	} {
		var rep diff.Report
		do(t, h, http.MethodGet, "/v1/diff/"+pair[0]+"/"+pair[1], nil, http.StatusOK, &rep)
		if rep.Schema != diff.Schema || rep.Changed != 0 || len(rep.Ops) == 0 {
			t.Fatalf("self-diff %v: %+v", pair, rep)
		}
		for _, op := range rep.Ops {
			if op.Verdict != diff.Unchanged {
				t.Errorf("self-diff %v: op %s verdict %s", pair, op.Op, op.Verdict)
			}
		}
	}
}

func TestDiffFlagsARealChange(t *testing.T) {
	h := newService(t)
	var a, b serve.IngestDoc
	// Same op, very different latency distributions.
	do(t, h, http.MethodPost, "/v1/ingest",
		envelope(t, "app", 100, 110, 120, 105, 130), http.StatusOK, &a)
	do(t, h, http.MethodPost, "/v1/ingest",
		envelope(t, "app", 1<<22, 1<<22+5, 1<<22+9, 1<<22+3, 1<<22+1), http.StatusOK, &b)
	if a.ID == b.ID {
		t.Fatal("distinct runs collapsed")
	}
	var rep diff.Report
	do(t, h, http.MethodGet, "/v1/diff/"+a.ID+"/"+b.ID, nil, http.StatusOK, &rep)
	if rep.Changed == 0 {
		t.Fatalf("shifted distribution not flagged: %+v", rep)
	}
}

func TestIngestRejectsGarbage(t *testing.T) {
	h := newService(t)
	var e serve.ErrorDoc
	do(t, h, http.MethodPost, "/v1/ingest", []byte("not an envelope"),
		http.StatusBadRequest, &e)
	if e.Error == "" {
		t.Fatal("error body empty")
	}
}

// Scenario names contain slashes ("ext2/readzero"), which a path
// segment cannot carry unescaped: the ?a=&b= query form must resolve
// them.
func TestDiffQueryFormHandlesSlashNames(t *testing.T) {
	h := newService(t)
	var ing serve.IngestDoc
	do(t, h, http.MethodPost, "/v1/ingest",
		envelope(t, "ext2/readzero", 100, 2_000), http.StatusOK, &ing)

	var rep diff.Report
	do(t, h, http.MethodGet,
		"/v1/diff?a=latest:ext2/readzero&b=latest:ext2/readzero",
		nil, http.StatusOK, &rep)
	if rep.Changed != 0 || len(rep.Ops) == 0 {
		t.Fatalf("query-form self-diff: %+v", rep)
	}
	// Blessing by slash-qualified latest: reference works too.
	var blessed report.BaselineEntry
	do(t, h, http.MethodPost, "/v1/baseline",
		[]byte(`{"run": "latest:ext2/readzero"}`), http.StatusOK, &blessed)
	if blessed.Run != ing.ID {
		t.Fatalf("bless by latest: %+v", blessed)
	}
	var e serve.ErrorDoc
	do(t, h, http.MethodGet, "/v1/diff?a=latest:ext2/readzero",
		nil, http.StatusBadRequest, &e)
}

func TestDiffUnknownRefIs404(t *testing.T) {
	h := newService(t)
	var e serve.ErrorDoc
	do(t, h, http.MethodGet, "/v1/diff/latest:ghost/latest:ghost", nil,
		http.StatusNotFound, &e)
	if !strings.Contains(e.Error, "ghost") {
		t.Fatalf("error: %q", e.Error)
	}
}

func TestBaselineRequestValidation(t *testing.T) {
	h := newService(t)
	var e serve.ErrorDoc
	do(t, h, http.MethodPost, "/v1/baseline", []byte(`{}`), http.StatusBadRequest, &e)
	do(t, h, http.MethodPost, "/v1/baseline", []byte(`{"run":"deadbeef00"}`),
		http.StatusNotFound, &e)
	do(t, h, http.MethodPost, "/v1/baseline", []byte(`not json`),
		http.StatusBadRequest, &e)
}

// The service must hold up under concurrent producers: many goroutines
// ingesting distinct envelopes while readers list and diff (run under
// -race in CI).
func TestConcurrentIngestAndRead(t *testing.T) {
	h := newService(t)
	const producers = 8
	envs := make([][]byte, producers)
	for i := range envs {
		envs[i] = envelope(t, fmt.Sprintf("app-%d", i), uint64(100*(i+1)))
	}
	// The goroutines only perform the requests; all assertions happen
	// back on the test goroutine.
	done := make(chan *httptest.ResponseRecorder, producers)
	for i := 0; i < producers; i++ {
		i := i
		go func() {
			rw := httptest.NewRecorder()
			h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(envs[i])))
			done <- rw
		}()
	}
	ids := make(map[string]bool)
	for i := 0; i < producers; i++ {
		rw := <-done
		if rw.Code != http.StatusOK {
			t.Fatalf("concurrent ingest: status %d\n%s", rw.Code, rw.Body)
		}
		var ing serve.IngestDoc
		if err := json.Unmarshal(rw.Body.Bytes(), &ing); err != nil {
			t.Fatal(err)
		}
		ids[ing.ID] = true
	}
	var runs report.RunListDoc
	do(t, h, http.MethodGet, "/v1/runs", nil, http.StatusOK, &runs)
	if len(runs.Runs) != producers || len(ids) != producers {
		t.Fatalf("after concurrent ingest: %d listed, %d distinct", len(runs.Runs), len(ids))
	}
}
