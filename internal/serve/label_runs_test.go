package serve_test

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"osprof/internal/report"
	"osprof/internal/serve"
	"osprof/internal/store"
)

// GET /v1/runs?label= composes with cursor paging: the Seq cursor
// walks the filtered sequence without overlap or loss, stepping over
// unlabeled and differently labeled runs.
func TestRunsLabelPaging(t *testing.T) {
	sv, _ := newServer(t, serve.Options{})
	h := sv.Handler()

	// Ingest runs with labels cell-a, (none), cell-b cycling — five
	// cell-a runs scattered through the sequence.
	labels := []string{"cell-a", "", "cell-b", "cell-a", "", "cell-a", "cell-b", "cell-a", "", "cell-a"}
	var wantIDs []string
	for i, l := range labels {
		var ing serve.IngestDoc
		// Distinct latencies keep each envelope's content address unique
		// so every ingest appends an index entry.
		body := labeledEnvelope(t, l, map[string][]uint64{"read": {uint64(100 * (i + 1))}})
		do(t, h, http.MethodPost, "/v1/ingest", body, http.StatusOK, &ing)
		if l == "cell-a" {
			wantIDs = append(wantIDs, ing.ID)
		}
	}

	var got []string
	after, pages := 0, 0
	for {
		var page report.RunListDoc
		do(t, h, http.MethodGet, fmt.Sprintf("/v1/runs?label=cell-a&limit=2&after=%d", after), nil, http.StatusOK, &page)
		pages++
		for _, r := range page.Runs {
			if r.Label != "cell-a" {
				t.Fatalf("filtered page leaked label %q (seq %d)", r.Label, r.Seq)
			}
			got = append(got, r.ID)
		}
		if !page.Truncated {
			break
		}
		if page.NextAfter == 0 {
			t.Fatalf("truncated page without cursor: %+v", page)
		}
		after = page.NextAfter
	}
	if pages != 3 || len(got) != len(wantIDs) {
		t.Fatalf("paging: %d pages, %d runs, want 3 pages of %d", pages, len(got), len(wantIDs))
	}
	for i, id := range wantIDs {
		if got[i] != id {
			t.Fatalf("page order: got[%d]=%s want %s", i, got[i], id)
		}
	}

	// An unknown label pages to an empty, unTruncated document.
	var empty report.RunListDoc
	do(t, h, http.MethodGet, "/v1/runs?label=ghost&limit=2", nil, http.StatusOK, &empty)
	if len(empty.Runs) != 0 || empty.Truncated {
		t.Fatalf("unknown label: %+v", empty)
	}

	// The unfiltered listing still carries every run, labels mirrored
	// on the labeled ones only.
	var all report.RunListDoc
	do(t, h, http.MethodGet, "/v1/runs", nil, http.StatusOK, &all)
	if len(all.Runs) != len(labels) {
		t.Fatalf("full listing: %d runs, want %d", len(all.Runs), len(labels))
	}
	for i, r := range all.Runs {
		if r.Label != labels[i] {
			t.Fatalf("run %d label = %q, want %q", i, r.Label, labels[i])
		}
	}
}

// A label query against an archive whose index predates label
// mirroring answers 409: an empty filtered page would be inconclusive,
// not a fact.
func TestRunsLabelLegacyIndexConflict(t *testing.T) {
	dir := t.TempDir()
	// A legacy v1 single-file index (the pre-label on-disk layout).
	if err := os.WriteFile(filepath.Join(dir, "index"), []byte("osprof-index v1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	arch, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := serve.New(arch, serve.Options{}).Handler()

	var errDoc serve.ErrorDoc
	do(t, h, http.MethodGet, "/v1/runs?label=cell-a", nil, http.StatusConflict, &errDoc)

	// Unfiltered listings of the same archive still work.
	var all report.RunListDoc
	do(t, h, http.MethodGet, "/v1/runs", nil, http.StatusOK, &all)
	if len(all.Runs) != 0 {
		t.Fatalf("legacy listing: %+v", all)
	}
}
