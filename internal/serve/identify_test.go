package serve_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"osprof/internal/classify"
	"osprof/internal/core"
	"osprof/internal/serve"
	"osprof/internal/store"
)

// labeledEnvelope serializes a corpus-member run: a set with the given
// per-op latency shape, plus the label metadata the classifier groups
// by.
func labeledEnvelope(t testing.TB, label string, ops map[string][]uint64) []byte {
	t.Helper()
	set := core.NewSet("ref/" + label)
	for op, lats := range ops {
		p := set.Get(op)
		for _, l := range lats {
			p.Record(l)
		}
	}
	run := &core.Run{Set: set}
	if label != "" {
		run.Meta = map[string]string{classify.LabelMetaKey: label}
	}
	var buf bytes.Buffer
	if err := core.WriteRun(&buf, run); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// flat returns n copies of lat.
func flat(lat uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = lat
	}
	return out
}

// identifyService builds a handler whose archive holds a two-label
// corpus with well-separated read shapes.
func identifyService(t testing.TB) http.Handler {
	t.Helper()
	arch, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h := serve.Handler(arch)
	for label, lat := range map[string]uint64{"fast-config": 1 << 6, "slow-config": 1 << 20} {
		req := httptest.NewRequest("POST", "/v1/ingest",
			bytes.NewReader(labeledEnvelope(t, label, map[string][]uint64{"read": flat(lat, 500)})))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			t.Fatalf("seed ingest %s: %d\n%s", label, rw.Code, rw.Body)
		}
	}
	return h
}

// POST /v1/identify classifies an unknown envelope against the labeled
// archived runs: a near-centroid run matches its label, a foreign op
// mix abstains — both as 200 verdict documents.
func TestIdentifyEndpoint(t *testing.T) {
	h := identifyService(t)

	var rep classify.Report
	unknown := labeledEnvelope(t, "", map[string][]uint64{"read": flat(1<<6, 400)})
	do(t, h, "POST", "/v1/identify", unknown, http.StatusOK, &rep)
	if rep.Schema != classify.Schema || !rep.Matched || rep.Label != "fast-config" {
		t.Fatalf("verdict: %+v", rep)
	}
	if len(rep.Ranking) != 2 || len(rep.Evidence) == 0 {
		t.Errorf("ranking/evidence missing: %+v", rep)
	}

	foreign := labeledEnvelope(t, "", map[string][]uint64{"mmap": flat(1<<12, 400)})
	do(t, h, "POST", "/v1/identify", foreign, http.StatusOK, &rep)
	if rep.Matched {
		t.Fatalf("foreign profile matched: %+v", rep)
	}
	if rep.Reason == "" {
		t.Error("abstention without a reason")
	}
}

// An archive with no labeled runs answers with a clean abstention, not
// an error: the corpus being empty is a state, not a client fault.
func TestIdentifyEndpointEmptyCorpus(t *testing.T) {
	h := newService(t)
	var rep classify.Report
	do(t, h, "POST", "/v1/identify", labeledEnvelope(t, "", map[string][]uint64{"read": flat(1, 10)}),
		http.StatusOK, &rep)
	if rep.Matched || rep.Reason == "" {
		t.Fatalf("empty-corpus verdict: %+v", rep)
	}
}

// One labeled ingest at a stray bucket resolution must not poison
// identification: the corpus keeps the majority resolution and the
// endpoint keeps answering verdicts (a regression test for the
// permanent-500 failure mode).
func TestIdentifyEndpointSurvivesMixedResolutions(t *testing.T) {
	h := identifyService(t)
	stray := core.NewSetR("ref/stray", 2)
	for i := 0; i < 100; i++ {
		stray.Record("read", 1<<6)
	}
	var buf bytes.Buffer
	if err := core.WriteRun(&buf, &core.Run{
		Meta: map[string]string{classify.LabelMetaKey: "stray-config"},
		Set:  stray,
	}); err != nil {
		t.Fatal(err)
	}
	do(t, h, "POST", "/v1/ingest", buf.Bytes(), http.StatusOK, nil)

	// The r=1 majority still identifies; the stray label is absent.
	var rep classify.Report
	unknown := labeledEnvelope(t, "", map[string][]uint64{"read": flat(1<<6, 400)})
	do(t, h, "POST", "/v1/identify", unknown, http.StatusOK, &rep)
	if !rep.Matched || rep.Label != "fast-config" {
		t.Fatalf("verdict after stray ingest: %+v", rep)
	}
	for _, ld := range rep.Ranking {
		if ld.Label == "stray-config" {
			t.Fatalf("stray resolution entered the corpus: %+v", rep.Ranking)
		}
	}

	// An unknown at the stray resolution abstains instead of erroring.
	var strayEnv bytes.Buffer
	if err := core.WriteRun(&strayEnv, &core.Run{Set: stray.Clone()}); err != nil {
		t.Fatal(err)
	}
	do(t, h, "POST", "/v1/identify", strayEnv.Bytes(), http.StatusOK, &rep)
	if rep.Matched || !strings.Contains(rep.Reason, "resolution") {
		t.Fatalf("stray-resolution unknown: %+v", rep)
	}
}

// The memoized corpus must track the archive: a label ingested after
// the first identification has to appear in the next verdict's ranking
// (the cache is keyed on the index state, not built once).
func TestIdentifyEndpointSeesNewIngests(t *testing.T) {
	h := identifyService(t)
	var rep classify.Report
	unknown := labeledEnvelope(t, "", map[string][]uint64{"read": flat(1<<6, 400)})
	do(t, h, "POST", "/v1/identify", unknown, http.StatusOK, &rep)
	if len(rep.Ranking) != 2 {
		t.Fatalf("ranking: %+v", rep.Ranking)
	}
	late := labeledEnvelope(t, "late-config", map[string][]uint64{"read": flat(1<<12, 500)})
	do(t, h, "POST", "/v1/ingest", late, http.StatusOK, nil)
	do(t, h, "POST", "/v1/identify", unknown, http.StatusOK, &rep)
	if len(rep.Ranking) != 3 {
		t.Fatalf("late ingest missing from the corpus: %+v", rep.Ranking)
	}
}

func TestIdentifyEndpointRejectsGarbage(t *testing.T) {
	h := identifyService(t)
	var errDoc serve.ErrorDoc
	do(t, h, "POST", "/v1/identify", []byte("?????"), http.StatusBadRequest, &errDoc)
	if errDoc.Error == "" {
		t.Error("400 without an error body")
	}
}

// FuzzIdentifyEndpoint throws arbitrary bodies at POST /v1/identify:
// whatever the bytes, the service must answer 200 (a verdict) or 400
// (unparseable envelope) with a JSON body — never a 5xx, which would
// mean garbage input reached the archive or classifier as a fault.
func FuzzIdentifyEndpoint(f *testing.F) {
	h := identifyService(f)
	f.Add(labeledEnvelope(f, "", map[string][]uint64{"read": flat(1<<6, 100)}))
	f.Add([]byte("osprof-run v1 fingerprint=\"\"\n"))
	f.Add([]byte("osprof-set v1 x r=1\nend\n"))
	f.Add([]byte{0xff, 0xfe})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/identify", bytes.NewReader(body))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK && rw.Code != http.StatusBadRequest {
			t.Fatalf("status %d on body %q\n%s", rw.Code, body, rw.Body)
		}
		if ct := rw.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type %q", ct)
		}
	})
}
