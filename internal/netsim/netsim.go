// Package netsim models the 100 Mbps Ethernet link between the paper's
// client and server machines (§6.4), at TCP-segment granularity:
// messages are split into MSS-sized segments, receivers acknowledge
// every second segment immediately and delay the acknowledgment of a
// lone trailing segment by up to 200 ms (the delayed ACK), and outgoing
// data piggybacks pending acknowledgments.
//
// This is exactly the mechanism behind the paper's Figure 11: a Windows
// server will not continue a multi-part SMB transaction until every
// byte sent so far is acknowledged, so a delayed ACK inserts a 200 ms
// stall into FindFirst/FindNext; a Linux client avoids the stall
// because its immediate FindNext request carries the ACK.
package netsim

import (
	"fmt"

	"osprof/internal/cycles"
	"osprof/internal/sim"
	"osprof/internal/trace"
)

// Config describes the link.
type Config struct {
	// OneWayLatency is the propagation delay in cycles (default 56 us,
	// half the paper's ~112 us machine-to-machine latency).
	OneWayLatency uint64

	// CyclesPerByte is the serialization cost (default 136: 100 Mbps
	// at 1.7 GHz).
	CyclesPerByte uint64

	// MSS is the maximum segment size in bytes (default 1460).
	MSS int

	// DelayedAckTimeout is the delayed-ACK timer (default 200 ms);
	// only meaningful on sides with delayed ACKs enabled.
	DelayedAckTimeout uint64

	// SendCPU is the per-segment CPU cost charged to the sending
	// process (default 1500 cycles).
	SendCPU uint64
}

func (c *Config) applyDefaults() {
	if c.OneWayLatency == 0 {
		c.OneWayLatency = cycles.NetworkOneWay / 2
	}
	if c.CyclesPerByte == 0 {
		c.CyclesPerByte = 136
	}
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.DelayedAckTimeout == 0 {
		c.DelayedAckTimeout = cycles.DelayedAck
	}
	if c.SendCPU == 0 {
		c.SendCPU = 1_500
	}
}

// PacketKind distinguishes sniffer records.
type PacketKind int

const (
	DataPacket PacketKind = iota
	AckPacket
)

func (k PacketKind) String() string {
	if k == AckPacket {
		return "ACK"
	}
	return "DATA"
}

// Packet is one sniffer record (§2's packet sniffers; Figure 11 is
// rendered from these).
type Packet struct {
	Time  uint64
	From  string // side name
	Kind  PacketKind
	Label string
	Bytes int
	// Piggyback marks a data packet that also carried an ACK.
	Piggyback bool
}

// Sniffer records packets crossing the link.
type Sniffer struct{ Packets []Packet }

// Message is one application-level message after reassembly.
type Message struct {
	Label string
	Bytes int
	Data  any
}

// Conn is a TCP-like connection between two named sides.
type Conn struct {
	k       *sim.Kernel
	cfg     Config
	sniffer *Sniffer
	sides   [2]*side
}

// side holds the per-endpoint state.
type side struct {
	conn *Conn
	idx  int
	name string

	// DelayedAck enables RFC-1122 delayed acknowledgments (the
	// Windows registry key of §6.4 turns this off).
	delayedAck bool

	// Receiver state.
	unacked  int
	ackTimer func() // cancel function for the pending delayed ACK
	rxQueue  []Message
	rxWait   *sim.WaitQueue
	partial  []Message // segments of the in-flight message
	partLeft int       // segments still missing

	// Sender state: monotonic counters of data segments sent and the
	// highest cumulative acknowledgment received.
	sentSeq   uint64
	ackedSeq  uint64
	rcvdSeq   uint64 // receiver role: data segments received
	ackWaiter *sim.WaitQueue

	// tr, when set, wraps this endpoint's blocking waits (Recv,
	// WaitAcked) in network-layer spans. Nil means untraced.
	tr *trace.Tracer
}

// NewConn creates a connection between two named endpoints.
func NewConn(k *sim.Kernel, cfg Config, nameA, nameB string, sniffer *Sniffer) *Conn {
	cfg.applyDefaults()
	c := &Conn{k: k, cfg: cfg, sniffer: sniffer}
	for i, name := range []string{nameA, nameB} {
		c.sides[i] = &side{
			conn:       c,
			idx:        i,
			name:       name,
			delayedAck: true,
			rxWait:     sim.NewWaitQueue(k, "net-rx:"+name),
			ackWaiter:  sim.NewWaitQueue(k, "net-ack:"+name),
		}
	}
	return c
}

// Side returns endpoint 0 or 1.
func (c *Conn) Side(i int) *Side { return &Side{c.sides[i]} }

// Side is the public handle for one endpoint.
type Side struct{ s *side }

// Name returns the endpoint name.
func (e *Side) Name() string { return e.s.name }

// SetDelayedAck enables or disables delayed acknowledgments on this
// endpoint (the §6.4 registry change).
func (e *Side) SetDelayedAck(on bool) { e.s.delayedAck = on }

// SetTracer installs the layer tracer wrapping this endpoint's
// blocking waits in network-layer spans.
func (e *Side) SetTracer(tr *trace.Tracer) { e.s.tr = tr }

// InFlight reports unacknowledged segments sent from this endpoint.
func (e *Side) InFlight() int { return int(e.s.sentSeq - e.s.ackedSeq) }

func (c *Conn) record(pkt Packet) {
	if c.sniffer != nil {
		pkt.Time = c.k.Now()
		c.sniffer.Packets = append(c.sniffer.Packets, pkt)
	}
}

// segments returns how many MSS segments a message needs.
func (c *Conn) segments(bytes int) int {
	n := (bytes + c.cfg.MSS - 1) / c.cfg.MSS
	if n < 1 {
		n = 1
	}
	return n
}

// Send transmits a message from e without waiting for acknowledgment.
// The caller is charged per-segment CPU; delivery happens after
// serialization plus propagation. Outgoing data piggybacks any pending
// ACK of the receiver role of e.
func (e *Side) Send(p *sim.Proc, label string, bytes int, data any) {
	s := e.s
	c := s.conn
	segs := c.segments(bytes)
	p.Exec(c.cfg.SendCPU * uint64(segs))

	piggy := s.unacked > 0 || s.ackTimer != nil
	ackCover := s.rcvdSeq
	s.flushAckState()

	peer := c.sides[1-s.idx]
	var serialize uint64
	for i := 0; i < segs; i++ {
		segBytes := c.cfg.MSS
		if i == segs-1 {
			segBytes = bytes - (segs-1)*c.cfg.MSS
			if segBytes <= 0 {
				segBytes = bytes
			}
		}
		serialize += uint64(segBytes) * c.cfg.CyclesPerByte
		last := i == segs-1
		c.record(Packet{From: s.name, Kind: DataPacket, Label: segLabel(label, i, segs),
			Bytes: segBytes, Piggyback: piggy && i == 0})
		s.sentSeq++
		arrival := serialize + c.cfg.OneWayLatency
		c.k.Schedule(arrival, func() {
			peer.receiveSegment(label, bytes, data, last)
		})
	}
	if piggy {
		// The first data segment carried the ACK: deliver it to the
		// peer's sender state alongside the segment.
		seq := ackCover
		c.k.Schedule(uint64(c.cfg.MSS)*c.cfg.CyclesPerByte+c.cfg.OneWayLatency,
			func() { peer.ackArrived(seq) })
	}
}

// WaitAcked blocks until every segment sent from e has been
// acknowledged — the synchronous behavior of the Windows server that
// "does not continue to send data until it has received an ACK for
// everything until that point" (§6.4).
func (e *Side) WaitAcked(p *sim.Proc) {
	s := e.s
	if s.sentSeq <= s.ackedSeq {
		return
	}
	s.tr.Enter(p, trace.LayerNet)
	for s.sentSeq > s.ackedSeq {
		s.ackWaiter.Wait(p)
	}
	s.tr.Exit(p, trace.LayerNet)
}

// Recv blocks until a full message arrives and returns it. The wait —
// and only the wait — is a network-layer span: a message already
// reassembled costs nothing, while a block attributes the time
// (serialization, propagation, and any delayed-ACK stall at the peer)
// to the network.
func (e *Side) Recv(p *sim.Proc) Message {
	s := e.s
	if len(s.rxQueue) == 0 {
		s.tr.Enter(p, trace.LayerNet)
		for len(s.rxQueue) == 0 {
			s.rxWait.Wait(p)
		}
		s.tr.Exit(p, trace.LayerNet)
	}
	m := s.rxQueue[0]
	s.rxQueue = s.rxQueue[1:]
	return m
}

// receiveSegment runs in kernel context when a data segment lands.
func (s *side) receiveSegment(label string, totalBytes int, data any, last bool) {
	c := s.conn
	if s.partLeft == 0 {
		s.partLeft = c.segments(totalBytes)
	}
	s.partLeft--
	s.rcvdSeq++
	if last && s.partLeft == 0 {
		s.rxQueue = append(s.rxQueue, Message{Label: label, Bytes: totalBytes, Data: data})
		s.rxWait.WakeAll()
	}

	// TCP ACK policy: every second segment is acknowledged
	// immediately; a lone segment waits for the delayed-ACK timer in
	// the hope of piggybacking (§6.4).
	s.unacked++
	if s.unacked >= 2 || !s.delayedAck {
		s.sendAck("ack")
		return
	}
	if s.ackTimer == nil {
		fired := false
		canceled := false
		c.k.Schedule(c.cfg.DelayedAckTimeout, func() {
			if !canceled && !fired {
				fired = true
				s.ackTimer = nil
				if s.unacked > 0 {
					s.sendAck("delayed-ack")
				}
			}
		})
		s.ackTimer = func() { canceled = true }
	}
}

// sendAck emits a bare ACK packet to the peer.
func (s *side) sendAck(label string) {
	c := s.conn
	seq := s.rcvdSeq
	s.flushAckState()
	c.record(Packet{From: s.name, Kind: AckPacket, Label: label, Bytes: 40})
	peer := c.sides[1-s.idx]
	c.k.Schedule(40*c.cfg.CyclesPerByte+c.cfg.OneWayLatency,
		func() { peer.ackArrived(seq) })
}

// flushAckState clears receiver-side pending-ACK bookkeeping.
func (s *side) flushAckState() {
	s.unacked = 0
	if s.ackTimer != nil {
		s.ackTimer()
		s.ackTimer = nil
	}
}

// ackArrived runs in kernel context at the original sender: the
// cumulative acknowledgment covers seq segments of the peer's received
// stream (which mirrors this side's sent stream, the link is lossless
// and ordered).
func (s *side) ackArrived(seq uint64) {
	if seq > s.ackedSeq {
		s.ackedSeq = seq
	}
	if s.sentSeq == s.ackedSeq {
		s.ackWaiter.WakeAll()
	}
}

func segLabel(label string, i, total int) string {
	if total == 1 {
		return label
	}
	if i == 0 {
		return label
	}
	return fmt.Sprintf("%s continuation %d", label, i)
}
