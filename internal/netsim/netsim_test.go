package netsim

import (
	"testing"

	"osprof/internal/cycles"
	"osprof/internal/sim"
)

func rig() (*sim.Kernel, *Conn, *Sniffer) {
	k := sim.New(sim.Config{NumCPUs: 2, ContextSwitch: 100})
	sn := &Sniffer{}
	c := NewConn(k, Config{}, "client", "server", sn)
	return k, c, sn
}

func TestSingleSegmentRoundTrip(t *testing.T) {
	k, c, _ := rig()
	var rtt uint64
	k.Spawn("client", func(p *sim.Proc) {
		cl := c.Side(0)
		start := p.Now()
		cl.Send(p, "ping", 100, "ping-data")
		m := cl.Recv(p)
		rtt = p.Now() - start
		if m.Label != "pong" || m.Data.(string) != "pong-data" {
			t.Errorf("got %+v", m)
		}
	})
	k.SpawnDaemon("server", func(p *sim.Proc) {
		sv := c.Side(1)
		sv.Recv(p)
		sv.Send(p, "pong", 100, "pong-data")
	})
	k.Run()
	// Round trip: 2x (propagation + serialization) plus CPU; far less
	// than a delayed-ACK timeout.
	if rtt < 2*c.cfg.OneWayLatency {
		t.Errorf("rtt = %d < 2x propagation", rtt)
	}
	if rtt > 10*cycles.PerMillisecond {
		t.Errorf("rtt = %s: a delayed ACK leaked into a simple RPC", cycles.Format(rtt))
	}
}

func TestEverySecondSegmentAckedImmediately(t *testing.T) {
	k, c, sn := rig()
	k.Spawn("sender", func(p *sim.Proc) {
		c.Side(0).Send(p, "bulk", 2*1460, nil) // exactly 2 segments
		c.Side(0).WaitAcked(p)
	})
	k.SpawnDaemon("receiver", func(p *sim.Proc) {
		c.Side(1).Recv(p)
		p.Block("done")
	})
	k.Run()
	var acks int
	for _, pkt := range sn.Packets {
		if pkt.Kind == AckPacket {
			acks++
			if pkt.Label == "delayed-ack" {
				t.Error("even segment count triggered a delayed ACK")
			}
		}
	}
	if acks != 1 {
		t.Errorf("acks = %d, want 1 immediate", acks)
	}
	if k.Now() > 10*cycles.PerMillisecond {
		t.Errorf("finished at %s: stalled", cycles.Format(k.Now()))
	}
}

func TestLoneSegmentDelayedAck(t *testing.T) {
	k, c, sn := rig()
	var waited uint64
	k.Spawn("sender", func(p *sim.Proc) {
		start := p.Now()
		c.Side(0).Send(p, "lone", 500, nil) // 1 segment
		c.Side(0).WaitAcked(p)
		waited = p.Now() - start
	})
	k.SpawnDaemon("receiver", func(p *sim.Proc) {
		c.Side(1).Recv(p)
		p.Block("quiet") // nothing to piggyback on
	})
	k.Run()
	if waited < cycles.DelayedAck {
		t.Errorf("ACK wait = %s, want >= 200ms (delayed ACK)", cycles.Format(waited))
	}
	found := false
	for _, pkt := range sn.Packets {
		if pkt.Label == "delayed-ack" {
			found = true
		}
	}
	if !found {
		t.Error("sniffer saw no delayed-ack packet")
	}
}

func TestDelayedAckDisabled(t *testing.T) {
	k, c, _ := rig()
	c.Side(1).SetDelayedAck(false) // the §6.4 registry change
	var waited uint64
	k.Spawn("sender", func(p *sim.Proc) {
		start := p.Now()
		c.Side(0).Send(p, "lone", 500, nil)
		c.Side(0).WaitAcked(p)
		waited = p.Now() - start
	})
	k.SpawnDaemon("receiver", func(p *sim.Proc) {
		c.Side(1).Recv(p)
		p.Block("quiet")
	})
	k.Run()
	if waited >= cycles.DelayedAck {
		t.Errorf("ACK wait = %s despite delayed ACKs off", cycles.Format(waited))
	}
}

func TestPiggybackAvoidsDelayedAckStall(t *testing.T) {
	// The Linux-client behavior of Figure 11: the receiver immediately
	// sends its next request, carrying the ACK, so the sender's
	// WaitAcked completes without the 200 ms timer.
	k, c, sn := rig()
	var waited uint64
	k.Spawn("sender", func(p *sim.Proc) {
		start := p.Now()
		c.Side(0).Send(p, "reply-part", 500, nil) // 1 segment, ACK delayed
		c.Side(0).WaitAcked(p)
		waited = p.Now() - start
	})
	k.SpawnDaemon("receiver", func(p *sim.Proc) {
		c.Side(1).Recv(p)
		c.Side(1).Send(p, "FIND_NEXT request", 100, nil) // piggyback
		p.Block("done")
	})
	k.Run()
	if waited >= cycles.DelayedAck {
		t.Errorf("piggybacked ACK still waited %s", cycles.Format(waited))
	}
	foundPiggy := false
	for _, pkt := range sn.Packets {
		if pkt.Piggyback {
			foundPiggy = true
		}
	}
	if !foundPiggy {
		t.Error("no piggybacked packet recorded")
	}
}

func TestMessageReassemblyMultiSegment(t *testing.T) {
	k, c, _ := rig()
	var got Message
	k.Spawn("receiver", func(p *sim.Proc) {
		got = c.Side(1).Recv(p)
	})
	k.Spawn("sender", func(p *sim.Proc) {
		c.Side(0).Send(p, "big", 5_000, "payload") // 4 segments
	})
	k.Run()
	if got.Bytes != 5_000 || got.Data.(string) != "payload" {
		t.Errorf("reassembled = %+v", got)
	}
}

func TestSerializationTimeScalesWithBytes(t *testing.T) {
	elapsed := func(bytes int) uint64 {
		k, c, _ := rig()
		var e uint64
		k.Spawn("receiver", func(p *sim.Proc) {
			start := p.Now()
			c.Side(1).Recv(p)
			e = p.Now() - start
		})
		k.Spawn("sender", func(p *sim.Proc) {
			c.Side(0).Send(p, "m", bytes, nil)
		})
		k.Run()
		return e
	}
	small, big := elapsed(100), elapsed(100_000)
	if big <= small {
		t.Errorf("100KB (%d) not slower than 100B (%d)", big, small)
	}
	// 100KB at 100Mbps ~ 8ms ~ 13.6M cycles.
	if big < 10_000_000 {
		t.Errorf("100KB transfer = %s, too fast for 100Mbps", cycles.Format(big))
	}
}

func TestSnifferRecordsTimeline(t *testing.T) {
	k, c, sn := rig()
	k.Spawn("a", func(p *sim.Proc) {
		c.Side(0).Send(p, "x", 4000, nil) // 3 segments
	})
	k.SpawnDaemon("b", func(p *sim.Proc) {
		c.Side(1).Recv(p)
		p.Block("done")
	})
	k.Run()
	var data int
	lastTime := uint64(0)
	for _, pkt := range sn.Packets {
		if pkt.Time < lastTime {
			t.Error("sniffer timestamps not monotone")
		}
		lastTime = pkt.Time
		if pkt.Kind == DataPacket {
			data++
		}
	}
	if data != 3 {
		t.Errorf("data packets = %d, want 3", data)
	}
	// Continuation labels like the Figure 11 timeline.
	if sn.Packets[1].Label != "x continuation 1" {
		t.Errorf("label = %q", sn.Packets[1].Label)
	}
}
