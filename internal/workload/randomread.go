package workload

import (
	"math/rand"

	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// RandomRead models the paper's random-read workload (§6): processes
// "changing the file pointer position to a random value and reading 512
// bytes of data at that position" using direct I/O. Running two
// instances over the same file exposes the generic_file_llseek i_sem
// contention of §6.1.
type RandomRead struct {
	// Sys is the system-call surface.
	Sys vfs.Syscalls

	// Path is the shared file (default "/bigfile").
	Path string

	// Requests is the number of llseek+read pairs (default 200).
	Requests int

	// Seed drives the position sequence.
	Seed int64

	// ThinkTime is user-mode CPU between requests (default 500).
	ThinkTime uint64

	// Cached opens the file without O_DIRECT, so reads go through the
	// page cache: repeated random reads then split into cache-hit and
	// disk peaks whose balance tracks the cache size (the page-cache
	// discriminant of the identification corpus). The zero value keeps
	// the paper's §6 direct-I/O behavior.
	Cached bool
}

// RandomReadStats reports per-run observations.
type RandomReadStats struct {
	Requests  int
	BytesRead uint64
}

// Run executes the workload as process p.
func (w *RandomRead) Run(p *sim.Proc) RandomReadStats {
	if w.Path == "" {
		w.Path = "/bigfile"
	}
	if w.Requests == 0 {
		w.Requests = 200
	}
	if w.ThinkTime == 0 {
		w.ThinkTime = 500
	}
	rng := rand.New(rand.NewSource(w.Seed))
	var st RandomReadStats

	f, err := w.Sys.Open(p, w.Path, !w.Cached) // O_DIRECT unless Cached
	if err != nil {
		return st
	}
	size := f.Inode.Size
	if size < 512 {
		return st
	}
	for i := 0; i < w.Requests; i++ {
		pos := uint64(rng.Int63n(int64(size/512))) * 512
		w.Sys.Llseek(p, f, int64(pos), vfs.SeekSet)
		st.BytesRead += w.Sys.Read(p, f, 512)
		st.Requests++
		p.ExecUser(w.ThinkTime)
	}
	w.Sys.Close(p, f)
	return st
}
