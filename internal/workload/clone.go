package workload

import (
	"osprof/internal/core"
	"osprof/internal/sim"
)

// CloneStorm models the paper's Figure 1 workload: several processes
// concurrently calling the clone system call on an SMP system. The
// clone path allocates a task structure (pure CPU) and briefly holds
// the kernel's process-table semaphore; with concurrent callers the
// semaphore contends, splitting the latency profile into two peaks —
// the left one at the uncontended CPU cost, the right one at the wait
// cost (critical section remainder plus rescheduling).
//
// Latencies are captured entirely from user level with ReadTSC, exactly
// as the paper captured Figure 1.
type CloneStorm struct {
	// K is the simulated machine.
	K *sim.Kernel

	// Procs is the number of concurrent cloners (paper: 4 on 2 CPUs).
	Procs int

	// ClonesPerProc is the number of clone calls each process makes.
	ClonesPerProc int

	// TaskAllocCost is the CPU cost of clone outside the lock
	// (default 900 cycles: left peak near bucket 10).
	TaskAllocCost uint64

	// LockedCost is the CPU cost inside the process-table semaphore
	// (default 300 cycles).
	LockedCost uint64

	// ThinkTime is user-mode CPU between clone calls (default
	// 30,000 cycles ~ 18us). It must comfortably exceed the contended
	// hand-off cost or the semaphore saturates and every call
	// contends; short enough that collisions stay visible, like the
	// paper's Figure 1 right peak.
	ThinkTime uint64

	// Profile receives the user-level clone latencies; Prepare
	// creates it when nil.
	Profile *core.Profile

	// ptable is the shared process-table semaphore.
	ptable *sim.Semaphore
}

// Prepare applies defaults and creates the state the cloner processes
// share (the latency profile and the process-table semaphore). Callers
// that spawn the processes themselves — the scenario layer — call
// Prepare once and then RunProc from each process.
func (w *CloneStorm) Prepare() *core.Profile {
	if w.Procs == 0 {
		w.Procs = 4
	}
	if w.ClonesPerProc == 0 {
		w.ClonesPerProc = 2_000
	}
	if w.TaskAllocCost == 0 {
		w.TaskAllocCost = 900
	}
	if w.LockedCost == 0 {
		w.LockedCost = 300
	}
	if w.ThinkTime == 0 {
		w.ThinkTime = 30_000
	}
	if w.Profile == nil {
		w.Profile = core.NewProfile("clone")
	}
	if w.ptable == nil {
		w.ptable = sim.NewSemaphore(w.K, "process-table")
	}
	return w.Profile
}

// RunProc is cloner idx's process body; Prepare must have run.
func (w *CloneStorm) RunProc(p *sim.Proc, idx int) {
	p.ExecUser(uint64(idx) * 797) // desynchronize identical loops
	for j := 0; j < w.ClonesPerProc; j++ {
		start := p.ReadTSC()
		w.doClone(p, w.ptable)
		w.Profile.Record(p.ReadTSC() - start)
		// User-level think time with natural jitter; without it,
		// identical deterministic loops phase-lock and never collide
		// at the semaphore.
		p.ExecUser(w.ThinkTime + uint64(w.K.Rand().Intn(int(w.ThinkTime))))
	}
}

// Run executes the storm and returns the user-level profile of the
// clone operation. Each Run starts from fresh shared state, so a
// reused CloneStorm value never mixes runs (or kernels).
func (w *CloneStorm) Run() *core.Profile {
	w.Profile, w.ptable = nil, nil
	w.Prepare()
	for i := 0; i < w.Procs; i++ {
		idx := i
		w.K.Spawn("cloner", func(p *sim.Proc) { w.RunProc(p, idx) })
	}
	w.K.Run()
	return w.Profile
}

// doClone is the simulated clone system call.
func (w *CloneStorm) doClone(p *sim.Proc, ptable *sim.Semaphore) {
	p.Exec(w.TaskAllocCost)
	ptable.Down(p)
	p.Exec(w.LockedCost)
	ptable.Up(p)
}
