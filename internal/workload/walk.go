package workload

import (
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// Walk models a `find`/`tree`-style traversal: recursively list every
// directory and stat every entry, without reading any file data. It is
// the metadata-only counterpart of Grep — directory blocks and inode
// lookups dominate the profile, so cache-hit and disk-read peaks of
// readdir/lookup appear without the file-data I/O of Figure 7.
type Walk struct {
	// Sys is the system-call surface.
	Sys vfs.Syscalls

	// Root is the directory to traverse (default "/src").
	Root string

	// Think is user-mode CPU per processed entry (default 400
	// cycles: formatting the name).
	Think uint64
}

// WalkStats reports what the traversal touched.
type WalkStats struct {
	Dirs, Files int
	Stats       int // stat calls issued
}

// Run performs the traversal as process p.
func (w *Walk) Run(p *sim.Proc) WalkStats {
	if w.Root == "" {
		w.Root = "/src"
	}
	if w.Think == 0 {
		w.Think = 400
	}
	var st WalkStats
	w.walkDir(p, w.Root, &st)
	return st
}

func (w *Walk) walkDir(p *sim.Proc, path string, st *WalkStats) {
	f, err := w.Sys.Open(p, path, false)
	if err != nil {
		return
	}
	st.Dirs++
	var subdirs []string
	for {
		ents := w.Sys.Getdents(p, f)
		if len(ents) == 0 {
			break
		}
		for _, e := range ents {
			full := path + "/" + e.Name
			if _, err := w.Sys.Stat(p, full); err == nil {
				st.Stats++
			}
			p.ExecUser(w.Think)
			if e.Dir {
				subdirs = append(subdirs, full)
			} else {
				st.Files++
			}
		}
	}
	w.Sys.Close(p, f)
	for _, dir := range subdirs {
		w.walkDir(p, dir, st)
	}
}
