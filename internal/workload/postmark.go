package workload

import (
	"fmt"
	"math/rand"

	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// Postmark models Postmark v1.5 (§5.2): it "simulates the operation of
// electronic mail servers", performing creates, deletes, appends and
// reads over a pool of small files. The paper ran it with 20,000 files
// and 200,000 transactions to exceed OS caches; experiments here scale
// the counts down and document the substitution.
type Postmark struct {
	// Sys is the system-call surface.
	Sys vfs.Syscalls

	// Dir is the working directory (default "/postmark"; must exist
	// or be creatable).
	Dir string

	// Files is the initial file-pool size (default 500).
	Files int

	// Transactions is the number of transactions (default 2000).
	Transactions int

	// SizeMin/SizeMax bound file sizes in bytes (Postmark defaults:
	// 500 bytes .. 9.77 KB).
	SizeMin, SizeMax uint64

	// Seed drives the transaction mix.
	Seed int64
}

// PostmarkStats counts what ran.
type PostmarkStats struct {
	Creates, Deletes, Reads, Appends int
	VFSOps                           uint64 // total system calls issued
}

// Run executes the benchmark as process p.
func (w *Postmark) Run(p *sim.Proc) PostmarkStats {
	if w.Dir == "" {
		w.Dir = "/postmark"
	}
	if w.Files == 0 {
		w.Files = 500
	}
	if w.Transactions == 0 {
		w.Transactions = 2_000
	}
	if w.SizeMin == 0 {
		w.SizeMin = 500
	}
	if w.SizeMax == 0 {
		w.SizeMax = 10_000
	}
	rng := rand.New(rand.NewSource(w.Seed))
	var st PostmarkStats
	_ = w.Sys.Mkdir(p, w.Dir)
	st.VFSOps++

	living := make([]string, 0, w.Files)
	nextID := 0
	create := func() {
		name := fmt.Sprintf("%s/pm%06d", w.Dir, nextID)
		nextID++
		f, err := w.Sys.Create(p, name)
		st.VFSOps++
		if err != nil {
			return
		}
		size := w.SizeMin + uint64(rng.Int63n(int64(w.SizeMax-w.SizeMin+1)))
		w.Sys.Write(p, f, size)
		w.Sys.Close(p, f)
		st.VFSOps += 2
		living = append(living, name)
		st.Creates++
	}

	// Phase 1: build the initial pool.
	for i := 0; i < w.Files; i++ {
		create()
	}

	// Phase 2: transactions. Postmark picks read-vs-append and
	// create-vs-delete with equal bias by default.
	for i := 0; i < w.Transactions; i++ {
		if len(living) == 0 {
			create()
			continue
		}
		victim := rng.Intn(len(living))
		switch rng.Intn(4) {
		case 0: // read the whole file
			f, err := w.Sys.Open(p, living[victim], false)
			st.VFSOps++
			if err == nil {
				for w.Sys.Read(p, f, 4096) > 0 {
					st.VFSOps++
				}
				st.VFSOps++ // final zero-read
				w.Sys.Close(p, f)
				st.VFSOps++
				st.Reads++
			}
		case 1: // append
			f, err := w.Sys.Open(p, living[victim], false)
			st.VFSOps++
			if err == nil {
				w.Sys.Llseek(p, f, 0, vfs.SeekEnd)
				w.Sys.Write(p, f, w.SizeMin)
				w.Sys.Close(p, f)
				st.VFSOps += 3
				st.Appends++
			}
		case 2: // create
			create()
		case 3: // delete
			if w.Sys.Unlink(p, living[victim]) == nil {
				living = append(living[:victim], living[victim+1:]...)
				st.Deletes++
			}
			st.VFSOps++
		}
	}

	// Phase 3: delete the remaining pool.
	for _, name := range living {
		if w.Sys.Unlink(p, name) == nil {
			st.Deletes++
		}
		st.VFSOps++
	}
	return st
}
