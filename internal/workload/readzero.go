package workload

import (
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// ReadZero models the paper's Figure 3 workload: a process issuing
// zero-byte reads back to back. Because a zero-byte read never yields
// the CPU (Y = 0 in Equation 3), running two such processes on one CPU
// produces measurable forcible-preemption effects on a preemptive
// kernel, and timer-interrupt peaks on any kernel.
type ReadZero struct {
	// Sys is the system-call surface.
	Sys vfs.Syscalls

	// Path is the file to read (default "/zero").
	Path string

	// Requests is the number of zero-byte reads.
	Requests int

	// UserWork is user-mode CPU between reads (default 20 cycles,
	// a tight loop).
	UserWork uint64

	// Observe, if set, receives the wall-clock latency of each read
	// and whether the process was forcibly preempted during it.
	// Experiments use it to validate Equation 3's expected counts.
	Observe func(latency uint64, preempted bool)
}

// ReadZeroStats summarizes the run.
type ReadZeroStats struct {
	Requests  int
	Preempted int
}

// Run executes the workload as process p.
func (w *ReadZero) Run(p *sim.Proc) ReadZeroStats {
	if w.Path == "" {
		w.Path = "/zero"
	}
	if w.Requests == 0 {
		w.Requests = 10_000
	}
	if w.UserWork == 0 {
		w.UserWork = 20
	}
	var st ReadZeroStats
	f, err := w.Sys.Open(p, w.Path, false)
	if err != nil {
		return st
	}
	for i := 0; i < w.Requests; i++ {
		p.Preempted() // clear the flag
		start := p.Now()
		w.Sys.Read(p, f, 0)
		lat := p.Now() - start
		pre := p.Preempted()
		if pre {
			st.Preempted++
		}
		if w.Observe != nil {
			w.Observe(lat, pre)
		}
		st.Requests++
		p.ExecUser(w.UserWork)
	}
	w.Sys.Close(p, f)
	return st
}
