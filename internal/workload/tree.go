// Package workload implements the workload generators the paper uses to
// capture its example profiles (§5, §6): a recursive grep over a source
// tree, random direct-I/O reads, Postmark, a clone storm, and
// zero-byte reads. Each generator runs against the vfs.Syscalls
// surface, so the user-level profiler can wrap it unchanged — just as
// the paper recompiles the same instrumented programs on every
// POSIX-compliant OS (§4).
package workload

import (
	"fmt"
	"math/rand"

	"osprof/internal/fs/ext2"
	"osprof/internal/vfs"
)

// TreeSpec describes a synthetic source tree like the Linux kernel tree
// used by the paper's grep workload (§6, "the grep utility ...
// recursively reading through all of the files in the Linux 2.6.11
// kernel source tree").
type TreeSpec struct {
	// Seed drives the deterministic shape of the tree.
	Seed int64

	// Dirs is the number of directories (default 40).
	Dirs int

	// FilesPerDirMin/Max bound the file count per directory
	// (defaults 3..30).
	FilesPerDirMin, FilesPerDirMax int

	// FileSizeMin/Max bound file sizes in bytes (defaults 1 KB..64 KB,
	// roughly kernel-source shaped).
	FileSizeMin, FileSizeMax uint64

	// BigDirEvery makes every Nth directory large (several directory
	// blocks), producing the multi-block readdir patterns of Figure 7
	// (default 5).
	BigDirEvery int
}

func (s *TreeSpec) applyDefaults() {
	if s.Dirs == 0 {
		s.Dirs = 40
	}
	if s.FilesPerDirMin == 0 {
		s.FilesPerDirMin = 3
	}
	if s.FilesPerDirMax == 0 {
		s.FilesPerDirMax = 30
	}
	if s.FileSizeMin == 0 {
		s.FileSizeMin = 1 << 10
	}
	if s.FileSizeMax == 0 {
		s.FileSizeMax = 64 << 10
	}
	if s.BigDirEvery == 0 {
		s.BigDirEvery = 5
	}
}

// TreeStats summarizes a generated tree.
type TreeStats struct {
	Dirs, Files int
	Bytes       uint64
}

// BuildTree creates the source tree under /src on fs (offline, no
// simulated cost: the tree exists before the experiment begins, with a
// cold cache).
func BuildTree(fs *ext2.FS, spec TreeSpec) TreeStats {
	spec.applyDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	var st TreeStats

	root := fs.MustAddDir(fs.Root(), "src")
	st.Dirs++
	dirs := []*vfs.Inode{root}
	for i := 1; i < spec.Dirs; i++ {
		parent := dirs[rng.Intn(len(dirs))]
		d := fs.MustAddDir(parent, fmt.Sprintf("dir%03d", i))
		dirs = append(dirs, d)
		st.Dirs++

		nfiles := spec.FilesPerDirMin
		if spread := spec.FilesPerDirMax - spec.FilesPerDirMin; spread > 0 {
			nfiles += rng.Intn(spread + 1)
		}
		if spec.BigDirEvery > 0 && i%spec.BigDirEvery == 0 {
			// A large directory: several 4 KB blocks of entries.
			nfiles = 64*2 + rng.Intn(64*2)
		}
		for j := 0; j < nfiles; j++ {
			size := spec.FileSizeMin
			if spread := spec.FileSizeMax - spec.FileSizeMin; spread > 0 {
				size += uint64(rng.Int63n(int64(spread) + 1))
			}
			fs.MustAddFile(d, fmt.Sprintf("file%04d.c", j), size)
			st.Files++
			st.Bytes += size
		}
	}
	return st
}
