package workload

import (
	"testing"

	"osprof/internal/analysis"
	"osprof/internal/disk"
	"osprof/internal/fs/ext2"
	"osprof/internal/mem"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

func rig(cfg ext2.Config) (*sim.Kernel, *ext2.FS, *vfs.VFS) {
	k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 100, Seed: 1})
	d := disk.New(k, disk.Config{})
	pc := mem.NewCache(k, 8192)
	fs := ext2.New(k, d, pc, "ext2", cfg)
	v := vfs.New(k)
	if err := v.Mount("/", fs); err != nil {
		panic(err)
	}
	return k, fs, v
}

func TestBuildTreeDeterministic(t *testing.T) {
	_, fs1, _ := rig(ext2.Config{})
	_, fs2, _ := rig(ext2.Config{})
	st1 := BuildTree(fs1, TreeSpec{Seed: 9, Dirs: 20})
	st2 := BuildTree(fs2, TreeSpec{Seed: 9, Dirs: 20})
	if st1 != st2 {
		t.Errorf("tree generation not deterministic: %+v vs %+v", st1, st2)
	}
	if st1.Dirs != 20 || st1.Files == 0 {
		t.Errorf("stats = %+v", st1)
	}
}

func TestGrepVisitsEverything(t *testing.T) {
	k, fs, v := rig(ext2.Config{})
	built := BuildTree(fs, TreeSpec{Seed: 3, Dirs: 15})
	var st GrepStats
	k.Spawn("grep", func(p *sim.Proc) {
		st = (&Grep{Sys: v}).Run(p)
	})
	k.Run()
	if st.Dirs != built.Dirs {
		t.Errorf("visited %d dirs, tree has %d", st.Dirs, built.Dirs)
	}
	if st.Files != built.Files {
		t.Errorf("visited %d files, tree has %d", st.Files, built.Files)
	}
	if st.BytesRead != built.Bytes {
		t.Errorf("read %d bytes, tree has %d", st.BytesRead, built.Bytes)
	}
	// grep calls getdents until empty: one past-EOF call per dir.
	if st.PastEOFCalls != built.Dirs {
		t.Errorf("past-EOF calls = %d, want %d", st.PastEOFCalls, built.Dirs)
	}
}

func TestRandomReadIssuesRequests(t *testing.T) {
	k, fs, v := rig(ext2.Config{})
	fs.MustAddFile(fs.Root(), "bigfile", 1024*vfs.PageSize)
	var st RandomReadStats
	k.Spawn("rr", func(p *sim.Proc) {
		st = (&RandomRead{Sys: v, Requests: 50, Seed: 2}).Run(p)
	})
	k.Run()
	if st.Requests != 50 || st.BytesRead != 50*512 {
		t.Errorf("stats = %+v", st)
	}
	if fs.Disk().Stats().Reads == 0 {
		t.Error("direct I/O reads never reached the disk")
	}
}

func TestReadZeroObservesEachRequest(t *testing.T) {
	k, fs, v := rig(ext2.Config{})
	fs.MustAddFile(fs.Root(), "zero", vfs.PageSize)
	seen := 0
	var st ReadZeroStats
	k.Spawn("rz", func(p *sim.Proc) {
		st = (&ReadZero{
			Sys: v, Requests: 500,
			Observe: func(lat uint64, pre bool) {
				seen++
				if lat == 0 {
					t.Error("zero latency observed")
				}
			},
		}).Run(p)
	})
	k.Run()
	if seen != 500 || st.Requests != 500 {
		t.Errorf("observed %d, stats %+v", seen, st)
	}
	if st.Preempted != 0 {
		t.Errorf("single process was preempted %d times", st.Preempted)
	}
}

func TestPostmarkRunsTransactionMix(t *testing.T) {
	k, _, v := rig(ext2.Config{})
	var st PostmarkStats
	k.Spawn("pm", func(p *sim.Proc) {
		st = (&Postmark{Sys: v, Files: 50, Transactions: 300, Seed: 4}).Run(p)
	})
	k.Run()
	if st.Creates < 50 {
		t.Errorf("creates = %d, want >= 50", st.Creates)
	}
	if st.Reads == 0 || st.Appends == 0 || st.Deletes == 0 {
		t.Errorf("mix incomplete: %+v", st)
	}
	if st.VFSOps < 1000 {
		t.Errorf("VFSOps = %d, suspiciously low", st.VFSOps)
	}
}

func TestPostmarkDeterministic(t *testing.T) {
	run := func() PostmarkStats {
		k, _, v := rig(ext2.Config{})
		var st PostmarkStats
		k.Spawn("pm", func(p *sim.Proc) {
			st = (&Postmark{Sys: v, Files: 30, Transactions: 100, Seed: 7}).Run(p)
		})
		k.Run()
		return st
	}
	if a, b := run(), run(); a != b {
		t.Errorf("postmark not deterministic: %+v vs %+v", a, b)
	}
}

// smpConfig is a FreeBSD-6-like dual-CPU machine with a millisecond
// scheduling quantum so four CPU-bound cloners actually time-share.
func smpConfig() sim.Config {
	return sim.Config{
		NumCPUs:       2,
		ContextSwitch: 9_350,
		Quantum:       1 << 21,
		TickPeriod:    1 << 19,
		TickCost:      2_000,
		WakePreempt:   true,
		Seed:          1,
	}
}

func TestCloneStormBimodalUnderContention(t *testing.T) {
	// Figure 1: 4 processes on 2 CPUs -> two peaks; 1 process -> one.
	prof4 := (&CloneStorm{K: sim.New(smpConfig()), Procs: 4, ClonesPerProc: 1_000}).Run()
	peaks4 := analysis.FindPeaksOpt(prof4, analysis.PeakOptions{MinCount: 5, MaxGap: -1})
	if len(peaks4) < 2 {
		t.Fatalf("4-proc clone profile has %d peaks, want >= 2\n%v",
			len(peaks4), prof4.Buckets[:32])
	}

	prof1 := (&CloneStorm{K: sim.New(smpConfig()), Procs: 1, ClonesPerProc: 1_000}).Run()
	peaks1 := analysis.FindPeaksOpt(prof1, analysis.PeakOptions{MinCount: 5, MaxGap: -1})
	if len(peaks1) != 1 {
		t.Fatalf("1-proc clone profile has %d peaks, want 1", len(peaks1))
	}
	// The contention peak sits well to the right of the CPU peak.
	if peaks4[len(peaks4)-1].ModeBucket <= peaks1[0].ModeBucket+2 {
		t.Errorf("contention peak at bucket %d vs base %d: not separated",
			peaks4[len(peaks4)-1].ModeBucket, peaks1[0].ModeBucket)
	}
}
