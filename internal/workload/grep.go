package workload

import (
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// Grep models `grep -r nonexistent-string tree`: recursively read every
// directory and every file. Like the real utility, it keeps calling
// getdents until no more entries return — producing the past-EOF
// readdir calls that form the first peak of Figure 7 — and reads file
// data in fixed-size chunks.
type Grep struct {
	// Sys is the system-call surface (possibly wrapped by a
	// user-level profiler).
	Sys vfs.Syscalls

	// Root is the directory to scan (default "/src").
	Root string

	// Chunk is the read size in bytes (default 32 KB, grep's buffer).
	Chunk uint64

	// MatchCost is the user-mode CPU burned scanning each chunk for
	// the pattern (default 3000 cycles).
	MatchCost uint64
}

// GrepStats reports what the scan touched.
type GrepStats struct {
	Dirs, Files  int
	BytesRead    uint64
	GetdentsOps  int
	PastEOFCalls int
}

// Run performs the recursive scan as process p.
func (g *Grep) Run(p *sim.Proc) GrepStats {
	if g.Root == "" {
		g.Root = "/src"
	}
	if g.Chunk == 0 {
		g.Chunk = 32 << 10
	}
	if g.MatchCost == 0 {
		g.MatchCost = 3_000
	}
	var st GrepStats
	g.scanDir(p, g.Root, &st)
	return st
}

func (g *Grep) scanDir(p *sim.Proc, path string, st *GrepStats) {
	f, err := g.Sys.Open(p, path, false)
	if err != nil {
		return
	}
	st.Dirs++
	var subdirs, files []string
	for {
		ents := g.Sys.Getdents(p, f)
		st.GetdentsOps++
		if len(ents) == 0 {
			st.PastEOFCalls++
			break
		}
		for _, e := range ents {
			full := path + "/" + e.Name
			if e.Dir {
				subdirs = append(subdirs, full)
			} else {
				files = append(files, full)
			}
		}
	}
	g.Sys.Close(p, f)

	// Scan files first, then recurse — the depth-first order grep
	// uses, interleaving file data and directory metadata I/O.
	for _, file := range files {
		g.scanFile(p, file, st)
	}
	for _, dir := range subdirs {
		g.scanDir(p, dir, st)
	}
}

func (g *Grep) scanFile(p *sim.Proc, path string, st *GrepStats) {
	f, err := g.Sys.Open(p, path, false)
	if err != nil {
		return
	}
	st.Files++
	for {
		n := g.Sys.Read(p, f, g.Chunk)
		if n == 0 {
			break
		}
		st.BytesRead += n
		p.ExecUser(g.MatchCost) // pattern matching in user space
	}
	g.Sys.Close(p, f)
}
